//! The daemon wire protocol: length-prefixed frames of snap-encoded
//! messages.
//!
//! Hand-rolled on the same [`SnapWriter`]/[`SnapReader`] primitives as
//! every other persisted format in the workspace — no serialization
//! dependency, and the same loud-failure properties: truncated or
//! malformed frames surface as [`SnapError`]s, never as garbage jobs.
//!
//! A frame is a `u32` little-endian payload length followed by the
//! payload; payloads open with a one-byte message tag. [`Request`]
//! tags live below 128, [`Response`] tags at or above it, so a peer
//! reading the wrong direction fails immediately.
//!
//! Job expressibility: the protocol carries exactly the job shapes the
//! figure ladder sweeps — SPEC-generator (and pair), irregular-family,
//! and trace-file workloads under any named prefetcher configuration,
//! mapper, feature override, and sampling period. Trace-file jobs
//! travel as path + header digest: the daemon shares the client's
//! filesystem (it listens on a unix socket), and the digest in the
//! content key means a mismatched file fails loudly at session time
//! rather than replaying the wrong trace. Jobs built from boxed custom
//! generators, pre-built graphs, or custom prefetcher config structs
//! are not expressible ([`remotable`] returns `false`) and run locally
//! instead. Every
//! encoded job also carries its content key; the decoder recomputes
//! the key from the decoded spec and rejects mismatches, so protocol
//! drift can never silently serve the wrong simulation.

use std::io::{self, Read, Write};

use triangel_sim::{PrefetcherChoice, TriangelFeatures};
use triangel_types::snap::{snap_check, SnapError, SnapReader, SnapWriter};
use triangel_workloads::irregular::IrregularWorkload;
use triangel_workloads::spec::SpecWorkload;

use crate::job::{JobSpec, MapperSpec, RunParams, WorkloadSpec};

/// Wire-protocol version, exchanged in the hello handshake alongside
/// the simulator's snapshot version.
///
/// History: 1 = initial protocol; 2 = irregular-workload and
/// trace-file workload tags.
pub const PROTO_VERSION: u32 = 2;

/// Upper bound on one frame's payload, to keep a corrupt length prefix
/// from provoking an absurd allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// I/O errors, or a payload exceeding [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// I/O errors (including a clean EOF as `UnexpectedEof`), or a length
/// prefix exceeding [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Whether the wire protocol can express `job` (see the module docs).
///
/// Jobs with an explicit core count are *not* remotable: the wire
/// format has no `n_cores` field, so shipping such a job would silently
/// drop the count and run the wrong simulation. They fall back to local
/// execution instead.
pub fn remotable(job: &JobSpec) -> bool {
    if job.n_cores.is_some() {
        return false;
    }
    let workload_ok = matches!(
        job.workload,
        WorkloadSpec::Spec(_)
            | WorkloadSpec::Pair(_, _)
            | WorkloadSpec::Irregular(_)
            | WorkloadSpec::TraceFile { .. }
    );
    let prefetcher_ok = matches!(
        job.prefetcher,
        PrefetcherChoice::Baseline
            | PrefetcherChoice::Triage
            | PrefetcherChoice::TriageDeg4
            | PrefetcherChoice::TriageDeg4Look2
            | PrefetcherChoice::Triangel
            | PrefetcherChoice::TriangelBloom
            | PrefetcherChoice::TriangelNoMrb
            | PrefetcherChoice::TriangelLadder(_)
    );
    workload_ok && prefetcher_ok
}

fn encode_job(w: &mut SnapWriter, job: &JobSpec) {
    debug_assert!(remotable(job), "caller must filter with remotable()");
    match &job.workload {
        WorkloadSpec::Spec(wl) => {
            w.u8(0);
            w.str(wl.label());
        }
        WorkloadSpec::Pair(a, b) => {
            w.u8(1);
            w.str(a.label());
            w.str(b.label());
        }
        WorkloadSpec::Irregular(wl) => {
            w.u8(2);
            w.str(wl.label());
        }
        WorkloadSpec::TraceFile {
            path,
            records,
            checksum,
        } => {
            w.u8(3);
            w.str(&path.display().to_string());
            w.u64(*records);
            w.u64(*checksum);
        }
        _ => unreachable!("non-remotable workload"),
    }
    match job.prefetcher {
        PrefetcherChoice::Baseline => w.u8(0),
        PrefetcherChoice::Triage => w.u8(1),
        PrefetcherChoice::TriageDeg4 => w.u8(2),
        PrefetcherChoice::TriageDeg4Look2 => w.u8(3),
        PrefetcherChoice::Triangel => w.u8(4),
        PrefetcherChoice::TriangelBloom => w.u8(5),
        PrefetcherChoice::TriangelNoMrb => w.u8(6),
        PrefetcherChoice::TriangelLadder(step) => {
            w.u8(7);
            w.usize(step);
        }
        _ => unreachable!("non-remotable prefetcher"),
    }
    w.u64(job.params.warmup);
    w.u64(job.params.accesses);
    w.u64(job.params.sizing_window);
    w.u64(job.params.seed);
    match job.mapper {
        MapperSpec::Default => w.u8(0),
        MapperSpec::Realistic(seed) => {
            w.u8(1);
            w.u64(seed);
        }
    }
    match &job.features {
        Some(f) => {
            w.bool(true);
            for bit in [
                f.lookahead2,
                f.triangel_metadata,
                f.base_pattern_conf,
                f.second_chance,
                f.metadata_reuse_buffer,
                f.set_dueller,
                f.reuse_conf,
                f.high_pattern_conf,
                f.train_on_eviction,
            ] {
                w.bool(bit);
            }
        }
        None => w.bool(false),
    }
    w.u64(job.sample_every);
    // The content key rides along as a drift guard: the decoder
    // recomputes it from the decoded spec and rejects mismatches.
    w.str(&job.key());
}

fn spec_workload(label: &str) -> Result<SpecWorkload, SnapError> {
    SpecWorkload::ALL
        .into_iter()
        .find(|wl| wl.label() == label)
        .ok_or_else(|| SnapError::corrupt(format!("unknown SPEC workload `{label}`")))
}

fn irregular_workload(label: &str) -> Result<IrregularWorkload, SnapError> {
    IrregularWorkload::from_label(label)
        .ok_or_else(|| SnapError::corrupt(format!("unknown irregular workload `{label}`")))
}

fn decode_job(r: &mut SnapReader) -> Result<JobSpec, SnapError> {
    let workload = match r.u8()? {
        0 => WorkloadSpec::Spec(spec_workload(&r.str()?)?),
        1 => WorkloadSpec::Pair(spec_workload(&r.str()?)?, spec_workload(&r.str()?)?),
        2 => WorkloadSpec::Irregular(irregular_workload(&r.str()?)?),
        3 => WorkloadSpec::TraceFile {
            path: std::path::PathBuf::from(r.str()?),
            records: r.u64()?,
            checksum: r.u64()?,
        },
        t => return Err(SnapError::corrupt(format!("workload tag {t}"))),
    };
    let prefetcher = match r.u8()? {
        0 => PrefetcherChoice::Baseline,
        1 => PrefetcherChoice::Triage,
        2 => PrefetcherChoice::TriageDeg4,
        3 => PrefetcherChoice::TriageDeg4Look2,
        4 => PrefetcherChoice::Triangel,
        5 => PrefetcherChoice::TriangelBloom,
        6 => PrefetcherChoice::TriangelNoMrb,
        7 => PrefetcherChoice::TriangelLadder(r.usize()?),
        t => return Err(SnapError::corrupt(format!("prefetcher tag {t}"))),
    };
    let params = RunParams {
        warmup: r.u64()?,
        accesses: r.u64()?,
        sizing_window: r.u64()?,
        seed: r.u64()?,
    };
    let mapper = match r.u8()? {
        0 => MapperSpec::Default,
        1 => MapperSpec::Realistic(r.u64()?),
        t => return Err(SnapError::corrupt(format!("mapper tag {t}"))),
    };
    let features = if r.bool()? {
        Some(TriangelFeatures {
            lookahead2: r.bool()?,
            triangel_metadata: r.bool()?,
            base_pattern_conf: r.bool()?,
            second_chance: r.bool()?,
            metadata_reuse_buffer: r.bool()?,
            set_dueller: r.bool()?,
            reuse_conf: r.bool()?,
            high_pattern_conf: r.bool()?,
            train_on_eviction: r.bool()?,
        })
    } else {
        None
    };
    let sample_every = r.u64()?;
    let mut job = JobSpec::new(workload, prefetcher, params).mapper(mapper);
    if let Some(f) = features {
        job = job.features(f);
    }
    job = job.sample_every(sample_every);
    let sent_key = r.str()?;
    snap_check(
        job.key() == sent_key,
        &format!(
            "job key drift: client sent `{sent_key}`, decoded spec keys `{}`",
            job.key()
        ),
    )?;
    Ok(job)
}

/// A client-to-daemon message.
#[derive(Debug)]
pub enum Request {
    /// Version handshake; must open every connection.
    Hello {
        /// The client's [`PROTO_VERSION`].
        proto: u32,
        /// The client's [`triangel_sim::SNAPSHOT_VERSION`].
        snapshot: u32,
    },
    /// Execute (or serve from the store) a batch of jobs.
    RunJobs {
        /// The decoded job list, batch-indexed.
        jobs: Vec<JobSpec>,
    },
    /// Ask the daemon to exit after replying.
    Shutdown,
}

impl Request {
    /// Serializes this request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        match self {
            Request::Hello { proto, snapshot } => {
                w.u8(1);
                w.u32(*proto);
                w.u32(*snapshot);
            }
            Request::RunJobs { jobs } => {
                w.u8(2);
                w.usize(jobs.len());
                for job in jobs {
                    encode_job(&mut w, job);
                }
            }
            Request::Shutdown => w.u8(3),
        }
        w.into_bytes()
    }

    /// Parses a frame payload written by [`Request::encode`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] on malformed or inexpressible payloads.
    pub fn decode(payload: &[u8]) -> Result<Request, SnapError> {
        let mut r = SnapReader::new(payload);
        let req = match r.u8()? {
            1 => Request::Hello {
                proto: r.u32()?,
                snapshot: r.u32()?,
            },
            2 => {
                let n = r.usize()?;
                snap_check(n <= 100_000, "implausible job count")?;
                let mut jobs = Vec::with_capacity(n);
                for _ in 0..n {
                    jobs.push(decode_job(&mut r)?);
                }
                Request::RunJobs { jobs }
            }
            3 => Request::Shutdown,
            t => return Err(SnapError::corrupt(format!("request tag {t}"))),
        };
        r.finish()?;
        Ok(req)
    }
}

/// A daemon-to-client message. During a batch the daemon streams
/// [`Response::Progress`]/[`Response::JobDone`]/[`Response::JobFailed`]
/// in completion order (the batch `idx` identifies the job) and closes
/// with [`Response::BatchDone`].
#[derive(Debug)]
pub enum Response {
    /// Handshake accepted; versions echo the daemon's own.
    HelloOk {
        /// The daemon's [`PROTO_VERSION`].
        proto: u32,
        /// The daemon's [`triangel_sim::SNAPSHOT_VERSION`].
        snapshot: u32,
    },
    /// One simulation segment finished on the daemon.
    Progress {
        /// Batch index of the job.
        idx: u32,
        /// Accesses per core executed so far.
        executed: u64,
        /// Accesses per core the job runs in total.
        total: u64,
    },
    /// A job finished; `report` is in the persisted-report framing
    /// ([`triangel_store::report_from_bytes`] decodes it).
    JobDone {
        /// Batch index of the job.
        idx: u32,
        /// Whether the daemon served it from its store without
        /// executing.
        from_store: bool,
        /// The framed [`triangel_sim::RunReport`].
        report: Vec<u8>,
    },
    /// A job failed on the daemon.
    JobFailed {
        /// Batch index of the job.
        idx: u32,
        /// The rendered error.
        message: String,
    },
    /// The whole batch is resolved.
    BatchDone {
        /// Jobs the daemon actually simulated.
        executed: u32,
        /// Jobs served from the daemon's store.
        store_hits: u32,
    },
    /// Shutdown acknowledged; the daemon exits after this frame.
    ShutdownOk,
    /// The request could not be processed at all.
    Error {
        /// The rendered error.
        message: String,
    },
}

impl Response {
    /// Serializes this response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        match self {
            Response::HelloOk { proto, snapshot } => {
                w.u8(128);
                w.u32(*proto);
                w.u32(*snapshot);
            }
            Response::Progress {
                idx,
                executed,
                total,
            } => {
                w.u8(129);
                w.u32(*idx);
                w.u64(*executed);
                w.u64(*total);
            }
            Response::JobDone {
                idx,
                from_store,
                report,
            } => {
                w.u8(130);
                w.u32(*idx);
                w.bool(*from_store);
                w.bytes(report);
            }
            Response::JobFailed { idx, message } => {
                w.u8(131);
                w.u32(*idx);
                w.str(message);
            }
            Response::BatchDone {
                executed,
                store_hits,
            } => {
                w.u8(132);
                w.u32(*executed);
                w.u32(*store_hits);
            }
            Response::ShutdownOk => w.u8(134),
            Response::Error { message } => {
                w.u8(133);
                w.str(message);
            }
        }
        w.into_bytes()
    }

    /// Parses a frame payload written by [`Response::encode`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] on malformed payloads.
    pub fn decode(payload: &[u8]) -> Result<Response, SnapError> {
        let mut r = SnapReader::new(payload);
        let resp = match r.u8()? {
            128 => Response::HelloOk {
                proto: r.u32()?,
                snapshot: r.u32()?,
            },
            129 => Response::Progress {
                idx: r.u32()?,
                executed: r.u64()?,
                total: r.u64()?,
            },
            130 => Response::JobDone {
                idx: r.u32()?,
                from_store: r.bool()?,
                report: r.bytes()?.to_vec(),
            },
            131 => Response::JobFailed {
                idx: r.u32()?,
                message: r.str()?,
            },
            132 => Response::BatchDone {
                executed: r.u32()?,
                store_hits: r.u32()?,
            },
            134 => Response::ShutdownOk,
            133 => Response::Error { message: r.str()? },
            t => return Err(SnapError::corrupt(format!("response tag {t}"))),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RunParams {
        RunParams {
            warmup: 100,
            accesses: 200,
            sizing_window: 50,
            seed: 9,
        }
    }

    #[test]
    fn jobs_round_trip_with_key_intact() {
        let jobs = vec![
            JobSpec::new(
                WorkloadSpec::Spec(SpecWorkload::Mcf),
                PrefetcherChoice::Baseline,
                params(),
            ),
            JobSpec::new(
                WorkloadSpec::Pair(SpecWorkload::Xalan, SpecWorkload::Omnetpp),
                PrefetcherChoice::TriangelLadder(4),
                params(),
            )
            .mapper(MapperSpec::Realistic(17))
            .sample_every(64),
            JobSpec::new(
                WorkloadSpec::Spec(SpecWorkload::Astar),
                PrefetcherChoice::Triangel,
                params(),
            )
            .features(TriangelFeatures {
                train_on_eviction: true,
                ..TriangelFeatures::all()
            }),
            JobSpec::new(
                WorkloadSpec::Irregular(IrregularWorkload::HashJoin),
                PrefetcherChoice::Triage,
                params(),
            ),
            JobSpec::new(
                WorkloadSpec::TraceFile {
                    path: "/tmp/t.trc".into(),
                    records: 4096,
                    checksum: 0xdead_beef_cafe_f00d,
                },
                PrefetcherChoice::TriangelBloom,
                params(),
            ),
        ];
        let frame = Request::RunJobs { jobs: jobs.clone() }.encode();
        let Request::RunJobs { jobs: back } = Request::decode(&frame).unwrap() else {
            panic!("wrong request variant");
        };
        assert_eq!(back.len(), jobs.len());
        for (a, b) in jobs.iter().zip(&back) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.sample_every, b.sample_every);
        }
    }

    #[test]
    fn custom_shapes_are_not_remotable() {
        let custom = JobSpec::new(
            WorkloadSpec::Custom {
                name: "x".into(),
                build: std::sync::Arc::new(|_| unreachable!()),
            },
            PrefetcherChoice::Triangel,
            params(),
        );
        assert!(!remotable(&custom));
        let spec = JobSpec::new(
            WorkloadSpec::Spec(SpecWorkload::Mcf),
            PrefetcherChoice::Triangel,
            params(),
        );
        assert!(remotable(&spec));
        for wl in IrregularWorkload::ALL {
            assert!(remotable(&JobSpec::new(
                WorkloadSpec::Irregular(wl),
                PrefetcherChoice::Triage,
                params(),
            )));
        }
        assert!(remotable(&JobSpec::new(
            WorkloadSpec::TraceFile {
                path: "/tmp/t.trc".into(),
                records: 1,
                checksum: 2,
            },
            PrefetcherChoice::Baseline,
            params(),
        )));
    }

    #[test]
    fn truncated_frames_fail_loudly() {
        let frame = Request::Hello {
            proto: PROTO_VERSION,
            snapshot: 3,
        }
        .encode();
        assert!(Request::decode(&frame[..frame.len() - 1]).is_err());
        // A response tag on the request channel is rejected.
        assert!(Request::decode(&Response::ShutdownOk.encode()).is_err());
    }

    #[test]
    fn frame_io_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert!(read_frame(&mut cursor).is_err()); // clean EOF
    }
}
