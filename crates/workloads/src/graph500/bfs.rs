//! Breadth-first search with a traced address stream.

use std::collections::VecDeque;
use std::sync::Arc;

use super::csr::Csr;
use crate::trace::{MemoryAccess, TraceSource};
use triangel_types::rng::SplitMix64;
use triangel_types::{Addr, Pc};

// Virtual layout of the BFS data structures (disjoint high regions).
const QUEUE_BASE: u64 = 0x60_0000_0000;
const OFFSETS_BASE: u64 = 0x61_0000_0000;
const EDGES_BASE: u64 = 0x62_0000_0000;
const VISITED_BASE: u64 = 0x68_0000_0000;

// One PC per access site, as a compiler would emit (grouped as
// base_offset, not nibbles).
#[allow(clippy::unusual_byte_groupings)]
mod pcs {
    use super::Pc;
    pub const PC_POP: Pc = Pc::new(0xBF5_00);
    pub const PC_OFFSETS: Pc = Pc::new(0xBF5_04);
    pub const PC_EDGES: Pc = Pc::new(0xBF5_08);
    pub const PC_VISITED: Pc = Pc::new(0xBF5_0C);
    pub const PC_PUSH: Pc = Pc::new(0xBF5_10);
}
use pcs::{PC_EDGES, PC_OFFSETS, PC_POP, PC_PUSH, PC_VISITED};

/// A BFS over a CSR graph that emits its memory accesses.
///
/// Each exhausted search restarts from a fresh random root with a cleared
/// visited map, like Graph500's repeated search phase. Because roots
/// differ, traversal orders never repeat — the stream is temporally
/// uncorrelated by construction.
#[derive(Debug)]
pub struct BfsTrace {
    name: String,
    graph: Arc<Csr>,
    visited: Vec<bool>,
    queue: VecDeque<u32>,
    buf: VecDeque<MemoryAccess>,
    pop_pos: u64,
    push_pos: u64,
    rng: SplitMix64,
}

impl BfsTrace {
    /// Creates a traced BFS over `graph`.
    pub fn new(name: impl Into<String>, graph: Arc<Csr>, seed: u64) -> Self {
        let n = graph.n_vertices();
        let mut t = BfsTrace {
            name: name.into(),
            graph,
            visited: vec![false; n],
            queue: VecDeque::new(),
            buf: VecDeque::new(),
            pop_pos: 0,
            push_pos: 0,
            rng: SplitMix64::new(seed),
        };
        t.restart();
        t
    }

    /// A shared handle to the underlying graph, so several traced BFS
    /// instances (one per experiment configuration) can reuse one
    /// expensive CSR build.
    pub fn graph_handle(&self) -> Arc<Csr> {
        Arc::clone(&self.graph)
    }

    fn restart(&mut self) {
        self.visited.iter_mut().for_each(|v| *v = false);
        self.queue.clear();
        self.pop_pos = 0;
        self.push_pos = 0;
        // Pick a root with at least one neighbour so searches do useful
        // work (Graph500 requires non-isolated roots).
        let n = self.graph.n_vertices() as u64;
        for _ in 0..64 {
            let root = self.rng.next_below(n) as u32;
            if self.graph.degree(root) > 0 {
                self.visited[root as usize] = true;
                self.queue.push_back(root);
                self.push_pos = 1;
                return;
            }
        }
        // Degenerate graph: fall back to vertex 0.
        self.visited[0] = true;
        self.queue.push_back(0);
        self.push_pos = 1;
    }

    /// Expands one vertex, appending its accesses to the buffer.
    fn expand_next_vertex(&mut self) {
        let Some(v) = self.queue.pop_front() else {
            self.restart();
            return;
        };

        // Read the vertex id from the work queue (sequential array).
        self.buf.push_back(
            MemoryAccess::new(PC_POP, Addr::new(QUEUE_BASE + self.pop_pos * 4)).with_work(3),
        );
        self.pop_pos += 1;

        // Load offsets[v] and offsets[v+1]; address depends on v.
        self.buf.push_back(
            MemoryAccess::new(PC_OFFSETS, Addr::new(OFFSETS_BASE + v as u64 * 8))
                .dependent()
                .with_work(1),
        );

        // Stream the adjacency list: one access per touched cache line;
        // the first depends on the offsets load.
        let start = self.graph.edge_start(v);
        let degree = self.graph.degree(v) as u64;
        let first_line = (EDGES_BASE + start * 4) >> 6;
        let last_line = (EDGES_BASE + (start + degree.max(1) - 1) * 4) >> 6;
        for (i, line) in (first_line..=last_line).enumerate() {
            let mut a = MemoryAccess::new(PC_EDGES, Addr::new(line << 6)).with_work(1);
            if i == 0 {
                a = a.dependent();
            }
            self.buf.push_back(a);
        }

        // Visit each neighbour: a data-dependent bitmap probe, plus a
        // queue append on first visit.
        let neighbors: Vec<u32> = self.graph.neighbors(v).to_vec();
        for u in neighbors {
            self.buf.push_back(
                MemoryAccess::new(PC_VISITED, Addr::new(VISITED_BASE + u as u64 / 8))
                    .dependent()
                    .with_work(2),
            );
            if !self.visited[u as usize] {
                self.visited[u as usize] = true;
                self.queue.push_back(u);
                self.buf.push_back(
                    MemoryAccess::new(PC_PUSH, Addr::new(QUEUE_BASE + self.push_pos * 4))
                        .with_work(1),
                );
                self.push_pos += 1;
            }
        }
    }
}

impl TraceSource for BfsTrace {
    fn next_access(&mut self) -> MemoryAccess {
        while self.buf.is_empty() {
            self.expand_next_vertex();
        }
        self.buf.pop_front().expect("buffer refilled")
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.save_snap(w)
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.restore_snap(r)
    }
}

use triangel_types::snap::{snap_check, SnapError, SnapReader, SnapWriter, Snapshot};

impl BfsTrace {
    pub(crate) fn save_snap(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.visited.len());
        // Bit-packed: the s21 visited map is 2M entries.
        let mut byte = 0u8;
        for (i, v) in self.visited.iter().enumerate() {
            if *v {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                w.u8(byte);
                byte = 0;
            }
        }
        if !self.visited.len().is_multiple_of(8) {
            w.u8(byte);
        }
        w.usize(self.queue.len());
        for v in &self.queue {
            w.u32(*v);
        }
        w.usize(self.buf.len());
        for a in &self.buf {
            a.snap_save(w);
        }
        w.u64(self.pop_pos);
        w.u64(self.push_pos);
        self.rng.save(w)
    }

    pub(crate) fn restore_snap(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.expect_len(self.visited.len(), "visited map")?;
        let mut byte = 0u8;
        for i in 0..self.visited.len() {
            if i % 8 == 0 {
                byte = r.u8()?;
            }
            self.visited[i] = byte & (1 << (i % 8)) != 0;
        }
        let n = r.usize()?;
        let vertices = self.graph.n_vertices();
        self.queue.clear();
        for _ in 0..n {
            let v = r.u32()?;
            snap_check((v as usize) < vertices, "queued vertex out of range")?;
            self.queue.push_back(v);
        }
        let n = r.usize()?;
        self.buf.clear();
        for _ in 0..n {
            self.buf.push_back(MemoryAccess::snap_restore(r)?);
        }
        self.pop_pos = r.u64()?;
        self.push_pos = r.u64()?;
        self.rng.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph500::{generate_edges, KroneckerConfig};

    fn tiny_graph() -> Arc<Csr> {
        let edges = generate_edges(KroneckerConfig {
            scale: 8,
            edge_factor: 8,
            seed: 5,
        });
        Arc::new(Csr::from_edges(256, &edges))
    }

    #[test]
    fn visits_reach_most_of_the_graph() {
        let g = tiny_graph();
        let mut t = BfsTrace::new("bfs", Arc::clone(&g), 1);
        // Drive enough accesses to complete at least one full BFS.
        for _ in 0..200_000 {
            let _ = t.next_access();
        }
        // Kronecker graphs have a giant connected component.
        let visited = t.visited.iter().filter(|v| **v).count();
        assert!(visited > 64, "BFS visited only {visited} vertices");
    }

    #[test]
    fn accesses_touch_all_structures() {
        let g = tiny_graph();
        let mut t = BfsTrace::new("bfs", g, 2);
        let mut regions = std::collections::HashSet::new();
        for _ in 0..50_000 {
            regions.insert(t.next_access().vaddr.get() >> 32);
        }
        assert!(regions.contains(&0x60), "queue untouched");
        assert!(regions.contains(&0x61), "offsets untouched");
        assert!(regions.contains(&0x62), "edges untouched");
        assert!(regions.contains(&0x68), "visited untouched");
    }

    #[test]
    fn visited_probes_are_dependent() {
        let g = tiny_graph();
        let mut t = BfsTrace::new("bfs", g, 3);
        let mut saw_dependent_visit = false;
        for _ in 0..10_000 {
            let a = t.next_access();
            if a.pc == PC_VISITED {
                assert!(a.dependent);
                saw_dependent_visit = true;
            }
        }
        assert!(saw_dependent_visit);
    }

    #[test]
    fn stream_is_endless_across_restarts() {
        let g = tiny_graph();
        let mut t = BfsTrace::new("bfs", g, 4);
        for _ in 0..500_000 {
            let _ = t.next_access();
        }
    }
}
