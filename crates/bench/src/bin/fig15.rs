//! Reproduces Fig. 15 of the paper (including the Triangel-NoMRB
//! configuration). See DESIGN.md's experiment index.

use triangel_bench::{SpecSweep, SweepParams};

fn main() {
    let params = SweepParams::from_env();
    let sweep = SpecSweep::run(SpecSweep::paper_configs_with_nomrb(), &params);
    sweep.fig15_energy().print();
    sweep.fig15_dram_fraction().print();
}
