//! Tracking which Markov entry produced each outstanding prefetch.
//!
//! Eviction-time training (the `train_on_eviction` gate) needs to walk
//! back from a dying prefetched line to the Markov pair that predicted
//! it: the table is indexed by *predecessor*, but an eviction notice
//! only names the *target*. Hardware keeps this association alongside
//! its prefetch machinery (the request knows which metadata entry spawned
//! it); [`IssueTable`] models that as a small direct-mapped table written
//! when a chained prefetch issues and consumed when the line dies.
//!
//! The table is deliberately lossy: a collision overwrites the older
//! association and merely forfeits one training opportunity, exactly as
//! a bounded hardware structure would. It is fully deterministic.

use triangel_types::{xor_fold, LineAddr};

/// A direct-mapped target → predecessor table for issued temporal
/// prefetches.
#[derive(Debug)]
pub struct IssueTable {
    /// `(target, predecessor)` per slot.
    slots: Vec<Option<(LineAddr, LineAddr)>>,
    index_bits: u32,
    mask: usize,
}

impl IssueTable {
    /// Creates a table with `entries` slots (rounded up to a power of
    /// two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "issue table needs entries");
        let n = entries.next_power_of_two();
        IssueTable {
            slots: vec![None; n],
            index_bits: n.trailing_zeros(),
            mask: n - 1,
        }
    }

    /// The sizing both temporal prefetchers use: the paper L2's line
    /// count (4096), so a well-behaved resident population of
    /// prefetched lines rarely collides.
    pub fn paper_l2() -> Self {
        IssueTable::new(4096)
    }

    fn slot_of(&self, target: LineAddr) -> usize {
        if self.index_bits == 0 {
            0
        } else {
            (xor_fold(target.index(), self.index_bits) as usize) & self.mask
        }
    }

    /// Records that a prefetch of `target` was produced by the Markov
    /// entry indexed by `predecessor`, overwriting any collision.
    pub fn record(&mut self, target: LineAddr, predecessor: LineAddr) {
        let slot = self.slot_of(target);
        self.slots[slot] = Some((target, predecessor));
    }

    /// Consumes the association for `target`, if it survived: returns
    /// the predecessor whose entry predicted it and clears the slot.
    pub fn take(&mut self, target: LineAddr) -> Option<LineAddr> {
        let slot = self.slot_of(target);
        match self.slots[slot] {
            Some((t, pred)) if t == target => {
                self.slots[slot] = None;
                Some(pred)
            }
            _ => None,
        }
    }

    /// Number of live associations (diagnostics/tests).
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for IssueTable {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.slots.len());
        for slot in &self.slots {
            match slot {
                Some((t, p)) => {
                    w.bool(true);
                    w.u64(t.index());
                    w.u64(p.index());
                }
                None => w.bool(false),
            }
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        r.expect_len(self.slots.len(), "issue-table slots")?;
        for slot in &mut self.slots {
            *slot = if r.bool()? {
                Some((LineAddr::new(r.u64()?), LineAddr::new(r.u64()?)))
            } else {
                None
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_take_roundtrip() {
        let mut t = IssueTable::new(64);
        t.record(LineAddr::new(100), LineAddr::new(7));
        assert_eq!(t.take(LineAddr::new(100)), Some(LineAddr::new(7)));
        assert_eq!(t.take(LineAddr::new(100)), None, "take consumes");
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn collision_overwrites_older_association() {
        // One slot: every target collides.
        let mut t = IssueTable::new(1);
        assert_eq!(t.capacity(), 1);
        t.record(LineAddr::new(1), LineAddr::new(10));
        t.record(LineAddr::new(2), LineAddr::new(20));
        assert_eq!(t.take(LineAddr::new(1)), None, "displaced by collision");
        assert_eq!(t.take(LineAddr::new(2)), Some(LineAddr::new(20)));
    }

    #[test]
    fn rerecord_updates_predecessor() {
        let mut t = IssueTable::new(8);
        t.record(LineAddr::new(5), LineAddr::new(1));
        t.record(LineAddr::new(5), LineAddr::new(2));
        assert_eq!(t.take(LineAddr::new(5)), Some(LineAddr::new(2)));
    }

    #[test]
    #[should_panic(expected = "needs entries")]
    fn zero_entries_rejected() {
        let _ = IssueTable::new(0);
    }
}
