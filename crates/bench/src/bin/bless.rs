//! `bless` — regenerate (or verify) the committed golden fixtures.
//!
//! Golden fixtures pin the simulator's behaviour byte-for-byte; they
//! must only ever change as a *deliberate, reviewed* step when a
//! behaviour change lands. This tool makes that step explicit:
//!
//! ```sh
//! # Regenerate every fixture (then inspect `git diff` and commit):
//! cargo run --release -p triangel-bench --bin bless
//!
//! # Regenerate a subset:
//! cargo run --release -p triangel-bench --bin bless -- --filter evict
//!
//! # Verify without writing (CI: nonzero exit on any drift):
//! cargo run --release -p triangel-bench --bin bless -- --check
//! ```
//!
//! The sweep definitions live in `triangel_harness::goldens`, shared
//! with the fixture tests, so what `bless` writes is exactly what the
//! tests assert against.

use std::path::PathBuf;
use std::process::ExitCode;

use triangel_harness::filter::Pattern;
use triangel_harness::goldens;

struct Fixture {
    name: &'static str,
    what: &'static str,
    path: PathBuf,
    generate: fn() -> String,
}

fn fixtures() -> Vec<Fixture> {
    vec![
        Fixture {
            name: "golden_sweep",
            what: "default (gate-off) behaviour, pre-refactor pin",
            path: goldens::golden_fixture_path(),
            generate: || goldens::render(&goldens::golden_sweep()),
        },
        Fixture {
            name: "golden_evict_train",
            what: "train_on_eviction gate-on behaviour",
            path: goldens::evict_train_fixture_path(),
            generate: || goldens::render(&goldens::evict_train_sweep()),
        },
        Fixture {
            name: "golden_multicore",
            what: "four-core contended timing model",
            path: goldens::multicore_fixture_path(),
            generate: || goldens::render(&goldens::multicore_sweep()),
        },
    ]
}

fn main() -> ExitCode {
    let mut check = false;
    let mut filter: Option<Pattern> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--filter" => {
                let v = match args.next() {
                    Some(v) => v,
                    None => {
                        eprintln!("--filter needs a regex");
                        return ExitCode::from(2);
                    }
                };
                match Pattern::new(&v) {
                    Ok(p) => filter = Some(p),
                    Err(e) => {
                        eprintln!("bad --filter regex: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument `{other}` (expected --check, --filter RE)");
                return ExitCode::from(2);
            }
        }
    }

    let mut drifted = 0usize;
    let mut ran = 0usize;
    for fx in fixtures() {
        if let Some(p) = &filter {
            if !p.is_match(fx.name) {
                continue;
            }
        }
        ran += 1;
        eprintln!("[bless] generating {} ({})...", fx.name, fx.what);
        let fresh = (fx.generate)();
        let on_disk = std::fs::read_to_string(&fx.path).ok();
        let state = match &on_disk {
            Some(d) if *d == fresh => "unchanged",
            Some(_) => "CHANGED",
            None => "NEW",
        };
        if check {
            eprintln!("[bless] {:18} {}  {}", fx.name, state, fx.path.display());
            if state != "unchanged" {
                drifted += 1;
            }
        } else {
            if state != "unchanged" {
                std::fs::write(&fx.path, &fresh).unwrap_or_else(|e| {
                    panic!("cannot write {}: {e}", fx.path.display());
                });
            }
            eprintln!("[bless] {:18} {}  {}", fx.name, state, fx.path.display());
        }
    }
    if ran == 0 {
        eprintln!("[bless] no fixture matched the filter");
        return ExitCode::from(2);
    }
    if check && drifted > 0 {
        eprintln!(
            "[bless] {drifted} fixture(s) out of sync — a behaviour change reached a pinned \
             sweep. If intentional, re-bless with `cargo run -p triangel-bench --bin bless` \
             and commit the diff with an explanation."
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
