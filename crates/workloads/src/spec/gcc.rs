//! GCC (166 input)-like workload: compilation.
//!
//! Many medium-sized IR structures walked repeatedly, plus large strided
//! passes over arrays. GCC's physical footprint spans many pages, which
//! is what makes Triage's lookup table work well on a fresh system and
//! collapse under fragmentation (Fig. 19); the Set Dueller also speeds
//! GCC up by trading Markov ways back to data (Section 6.6).

use super::Builder;
use crate::mix::WorkloadMix;

pub(crate) fn build(mut b: Builder) -> WorkloadMix {
    // IR chains (RTL/trees): medium, fairly exact, some drift as code is
    // rewritten between passes.
    b.temporal("gcc.rtl", 40_000, 0.90, 8, 0.02, 0.010, true, 3);
    b.temporal("gcc.trees", 18_000, 0.86, 8, 0.02, 0.012, true, 2);
    // Dataflow bitmaps and arrays: strided, large.
    b.strided("gcc.bitmaps", 1, 48_000, 3);
    // Hash tables: small random.
    b.random("gcc.hash", 8_000, false, 1);
    b.finish()
}
