//! The daemon client: one connection, batch requests, streamed events.

use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use triangel_sim::{RunReport, SNAPSHOT_VERSION};
use triangel_store::report_from_bytes;

use crate::job::JobSpec;
use crate::service::wire::{read_frame, write_frame, Request, Response, PROTO_VERSION};
use crate::sweep::JobError;

/// One job's resolution from a daemon batch.
#[derive(Debug, Clone)]
pub struct RemoteOutcome {
    /// The job's report (or its failure), exactly as a local execution
    /// would have produced it.
    pub result: Result<Arc<RunReport>, JobError>,
    /// Whether the daemon served it from its store without executing.
    pub from_store: bool,
}

/// Cumulative traffic counters for one [`Client`] (all batches).
#[derive(Debug, Default)]
pub struct ClientStats {
    jobs: AtomicU64,
    executed: AtomicU64,
    store_hits: AtomicU64,
}

impl ClientStats {
    /// Jobs sent to the daemon.
    pub fn jobs(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Jobs the daemon actually simulated for us.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Jobs the daemon served from its store.
    pub fn store_hits(&self) -> u64 {
        self.store_hits.load(Ordering::Relaxed)
    }

    /// The standard one-line rendering for stderr summaries:
    /// `jobs=17 executed=14 store_hits=3`.
    pub fn render(&self) -> String {
        format!(
            "jobs={} executed={} store_hits={}",
            self.jobs(),
            self.executed(),
            self.store_hits()
        )
    }
}

/// A connection to a [`Server`](crate::service::Server).
///
/// Thread-compatible: one batch runs on the connection at a time
/// (enforced by an internal lock), which is exactly the sweep layer's
/// access pattern — the parallelism lives on the daemon's pool.
#[derive(Debug)]
pub struct Client {
    stream: Mutex<UnixStream>,
    stats: ClientStats,
}

impl Client {
    /// Connects to the daemon at `path` and performs the version
    /// handshake.
    ///
    /// # Errors
    ///
    /// Connection errors, or a daemon speaking a different protocol or
    /// simulating under a different snapshot version (results would
    /// not be comparable, so the mismatch is refused loudly).
    pub fn connect(path: impl AsRef<Path>) -> io::Result<Client> {
        let mut stream = UnixStream::connect(path)?;
        write_frame(
            &mut stream,
            &Request::Hello {
                proto: PROTO_VERSION,
                snapshot: SNAPSHOT_VERSION,
            }
            .encode(),
        )?;
        match Self::read_response(&mut stream)? {
            Response::HelloOk { .. } => Ok(Client {
                stream: Mutex::new(stream),
                stats: ClientStats::default(),
            }),
            Response::Error { message } => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("daemon refused handshake: {message}"),
            )),
            other => Err(protocol_error(&other)),
        }
    }

    /// This connection's cumulative counters.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Executes `jobs` on the daemon, blocking until the whole batch
    /// resolves. Every job must be [`remotable`](crate::service::remotable).
    /// With `progress` set, streamed per-segment events render as
    /// stderr lines.
    ///
    /// # Errors
    ///
    /// Transport or protocol errors — the *batch* could not be run.
    /// Individual job failures come back inside their
    /// [`RemoteOutcome`]s.
    pub fn run_jobs(&self, jobs: &[JobSpec], progress: bool) -> io::Result<Vec<RemoteOutcome>> {
        let mut stream = self.stream.lock().unwrap();
        write_frame(
            &mut *stream,
            &Request::RunJobs {
                jobs: jobs.to_vec(),
            }
            .encode(),
        )?;
        let mut outcomes: Vec<Option<RemoteOutcome>> = vec![None; jobs.len()];
        let total = jobs.len();
        let mut resolved = 0usize;
        loop {
            match Self::read_response(&mut stream)? {
                Response::Progress {
                    idx,
                    executed,
                    total,
                } => {
                    if progress {
                        eprintln!(
                            "[serve] job {idx}: {executed}/{total} ({:.0}%)",
                            100.0 * executed as f64 / total.max(1) as f64
                        );
                    }
                }
                Response::JobDone {
                    idx,
                    from_store,
                    report,
                } => {
                    let idx = idx as usize;
                    let slot = outcomes.get_mut(idx).ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("daemon resolved out-of-range job {idx}"),
                        )
                    })?;
                    let result = report_from_bytes(&report).map(Arc::new).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("daemon sent undecodable report for job {idx}: {e}"),
                        )
                    })?;
                    *slot = Some(RemoteOutcome {
                        result: Ok(result),
                        from_store,
                    });
                    resolved += 1;
                    if progress {
                        let kind = if from_store { "store hit" } else { "done" };
                        eprintln!("[serve] {resolved}/{total} {kind}  {}", jobs[idx].key());
                    }
                }
                Response::JobFailed { idx, message } => {
                    let idx = idx as usize;
                    let slot = outcomes.get_mut(idx).ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("daemon failed out-of-range job {idx}"),
                        )
                    })?;
                    *slot = Some(RemoteOutcome {
                        result: Err(JobError {
                            key: jobs[idx].key(),
                            message,
                        }),
                        from_store: false,
                    });
                    resolved += 1;
                }
                Response::BatchDone { .. } => break,
                Response::Error { message } => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("daemon rejected batch: {message}"),
                    ));
                }
                other => return Err(protocol_error(&other)),
            }
        }
        let outcomes: Vec<RemoteOutcome> = outcomes
            .into_iter()
            .enumerate()
            .map(|(i, o)| {
                o.ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("daemon never resolved job {i}"),
                    )
                })
            })
            .collect::<io::Result<_>>()?;
        self.stats.jobs.fetch_add(total as u64, Ordering::Relaxed);
        for o in &outcomes {
            if o.from_store {
                self.stats.store_hits.fetch_add(1, Ordering::Relaxed);
            } else if o.result.is_ok() {
                self.stats.executed.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(outcomes)
    }

    /// Asks the daemon to exit.
    ///
    /// # Errors
    ///
    /// Transport errors, or an unexpected reply.
    pub fn shutdown(&self) -> io::Result<()> {
        let mut stream = self.stream.lock().unwrap();
        write_frame(&mut *stream, &Request::Shutdown.encode())?;
        match Self::read_response(&mut stream)? {
            Response::ShutdownOk => Ok(()),
            other => Err(protocol_error(&other)),
        }
    }

    fn read_response(stream: &mut UnixStream) -> io::Result<Response> {
        let frame = read_frame(stream)?;
        Response::decode(&frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }
}

fn protocol_error(resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected daemon response: {resp:?}"),
    )
}
