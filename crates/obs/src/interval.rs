//! The deterministic interval time-series recorder.
//!
//! End-of-run aggregates name symptoms ("MCF coverage collapses") but
//! cannot localize them in run-time. An [`IntervalSeries`] carries one
//! [`IntervalSample`] per N *measured accesses* — a simulation-time
//! clock, never wall-clock — so the series is a pure function of the
//! job spec: identical across `--jobs` counts, identical across
//! snapshot interrupt→resume, and byte-identical whether or not anyone
//! reads it.
//!
//! Samples store *cumulative-since-measurement-start* counters; the
//! per-interval view ([`IntervalSeries::windows`]) differences
//! adjacent samples.

use triangel_types::snap::{snap_check, SnapError, SnapReader, SnapWriter, Snapshot};

/// Number of Set-Dueller partitioning counters carried per sample
/// (candidate Markov ways 0..=8).
pub const DUELLER_COUNTERS: usize = 9;

/// One sample of cumulative counters, taken at an interval boundary.
///
/// All fields count from measurement start (warmup excluded). Sums are
/// over cores except where noted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSample {
    /// Measured accesses completed when the sample was taken.
    pub end_access: u64,
    /// Instructions retired (sum over cores).
    pub instructions: u64,
    /// Cycles elapsed — **max over cores** (the wall-clock of the
    /// slowest core). Dividing `instructions` (a sum) by this max
    /// understates per-core IPC in multiprogrammed runs; per-core IPC
    /// must be derived from [`IntervalSample::core_instructions`] /
    /// [`IntervalSample::core_cycles`] instead.
    pub cycles: u64,
    /// Per-core cycles elapsed, indexed by core.
    pub core_cycles: Vec<u64>,
    /// Per-core instructions retired, indexed by core.
    pub core_instructions: Vec<u64>,
    /// L2 demand hits.
    pub l2_demand_hits: u64,
    /// L2 demand misses.
    pub l2_demand_misses: u64,
    /// Temporal prefetches issued.
    pub prefetches_issued: u64,
    /// Temporal prefetch fills into the L2.
    pub temporal_fills: u64,
    /// Temporal prefetches used by a demand access.
    pub temporal_used: u64,
    /// Temporal prefetches evicted dead.
    pub temporal_wasted: u64,
    /// Prefetches dropped (MSHR/queue pressure).
    pub prefetches_dropped: u64,
    /// Markov table entries currently valid (point-in-time).
    pub markov_occupancy: u64,
    /// Markov table entry capacity at the current sizing
    /// (point-in-time).
    pub markov_capacity: u64,
    /// L3 ways currently granted to the Markov partition
    /// (point-in-time).
    pub markov_ways: u64,
    /// Ways the prefetcher currently wants (max over cores,
    /// point-in-time).
    pub desired_ways: u64,
    /// Set-Dueller per-partitioning sample counters (element-wise sum
    /// over cores), index = candidate way count.
    pub dueller: [u64; DUELLER_COUNTERS],
}

impl IntervalSample {
    /// Cumulative IPC at this sample.
    ///
    /// For multi-core samples this is aggregate instructions over the
    /// slowest core's cycles — a throughput summary, not any single
    /// core's IPC; see [`IntervalSample::core_ipc_so_far`].
    pub fn ipc_so_far(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }

    /// Cumulative per-core IPC at this sample, indexed by core.
    pub fn core_ipc_so_far(&self) -> Vec<f64> {
        self.core_instructions
            .iter()
            .zip(&self.core_cycles)
            .map(|(&i, &c)| i as f64 / c.max(1) as f64)
            .collect()
    }

    /// Cumulative L2 demand miss rate at this sample.
    pub fn l2_miss_rate_so_far(&self) -> f64 {
        let total = self.l2_demand_hits + self.l2_demand_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_demand_misses as f64 / total as f64
        }
    }

    /// Cumulative temporal-prefetch accuracy at this sample.
    pub fn accuracy_so_far(&self) -> f64 {
        let judged = self.temporal_used + self.temporal_wasted;
        if judged == 0 {
            0.0
        } else {
            self.temporal_used as f64 / judged as f64
        }
    }
}

impl Snapshot for IntervalSample {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u64(self.end_access);
        w.u64(self.instructions);
        w.u64(self.cycles);
        w.usize(self.core_cycles.len());
        for &c in &self.core_cycles {
            w.u64(c);
        }
        w.usize(self.core_instructions.len());
        for &i in &self.core_instructions {
            w.u64(i);
        }
        w.u64(self.l2_demand_hits);
        w.u64(self.l2_demand_misses);
        w.u64(self.prefetches_issued);
        w.u64(self.temporal_fills);
        w.u64(self.temporal_used);
        w.u64(self.temporal_wasted);
        w.u64(self.prefetches_dropped);
        w.u64(self.markov_occupancy);
        w.u64(self.markov_capacity);
        w.u64(self.markov_ways);
        w.u64(self.desired_ways);
        for &d in &self.dueller {
            w.u64(d);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.end_access = r.u64()?;
        self.instructions = r.u64()?;
        self.cycles = r.u64()?;
        let n = r.usize()?;
        self.core_cycles = (0..n).map(|_| r.u64()).collect::<Result<_, _>>()?;
        let n = r.usize()?;
        self.core_instructions = (0..n).map(|_| r.u64()).collect::<Result<_, _>>()?;
        self.l2_demand_hits = r.u64()?;
        self.l2_demand_misses = r.u64()?;
        self.prefetches_issued = r.u64()?;
        self.temporal_fills = r.u64()?;
        self.temporal_used = r.u64()?;
        self.temporal_wasted = r.u64()?;
        self.prefetches_dropped = r.u64()?;
        self.markov_occupancy = r.u64()?;
        self.markov_capacity = r.u64()?;
        self.markov_ways = r.u64()?;
        self.desired_ways = r.u64()?;
        for d in &mut self.dueller {
            *d = r.u64()?;
        }
        Ok(())
    }
}

/// A recorded series: one sample every `every` measured accesses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSeries {
    /// Sampling period in measured accesses (0 = sampling disabled;
    /// such a series is never attached to a report).
    pub every: u64,
    /// Samples in simulation-time order.
    pub samples: Vec<IntervalSample>,
}

impl IntervalSeries {
    /// An empty series with the given period.
    pub fn new(every: u64) -> Self {
        IntervalSeries {
            every,
            samples: Vec::new(),
        }
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The per-interval (differenced) view of the series.
    pub fn windows(&self) -> Vec<IntervalWindow> {
        let mut prev = IntervalSample::default();
        self.samples
            .iter()
            .map(|s| {
                let w = IntervalWindow {
                    end_access: s.end_access,
                    // Aggregate IPC: instructions are summed over cores
                    // while cycles are the slowest core's clock, so this
                    // is a throughput summary; per-core IPC lives in
                    // `core_ipc`.
                    ipc: (s.instructions - prev.instructions) as f64
                        / (s.cycles.saturating_sub(prev.cycles)).max(1) as f64,
                    core_ipc: s
                        .core_instructions
                        .iter()
                        .zip(&s.core_cycles)
                        .enumerate()
                        .map(|(i, (&instr, &cyc))| {
                            let pi = prev.core_instructions.get(i).copied().unwrap_or(0);
                            let pc = prev.core_cycles.get(i).copied().unwrap_or(0);
                            (instr - pi) as f64 / cyc.saturating_sub(pc).max(1) as f64
                        })
                        .collect(),
                    l2_miss_rate: {
                        let misses = s.l2_demand_misses - prev.l2_demand_misses;
                        let total = misses + (s.l2_demand_hits - prev.l2_demand_hits);
                        if total == 0 {
                            0.0
                        } else {
                            misses as f64 / total as f64
                        }
                    },
                    issued: s.prefetches_issued - prev.prefetches_issued,
                    useful: s.temporal_used - prev.temporal_used,
                    wasted: s.temporal_wasted - prev.temporal_wasted,
                    accuracy_so_far: s.accuracy_so_far(),
                    markov_occupancy: s.markov_occupancy,
                    markov_ways: s.markov_ways,
                    desired_ways: s.desired_ways,
                };
                prev = s.clone();
                w
            })
            .collect()
    }
}

impl Snapshot for IntervalSeries {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u64(self.every);
        w.usize(self.samples.len());
        for s in &self.samples {
            s.save(w)?;
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let every = r.u64()?;
        snap_check(
            every == self.every,
            &format!(
                "interval series period: snapshot has {every}, session has {}",
                self.every
            ),
        )?;
        let n = r.usize()?;
        self.samples.clear();
        for _ in 0..n {
            let mut s = IntervalSample::default();
            s.restore(r)?;
            self.samples.push(s);
        }
        Ok(())
    }
}

/// One differenced interval of an [`IntervalSeries`].
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalWindow {
    /// Measured accesses completed at the end of this interval.
    pub end_access: u64,
    /// Aggregate IPC within the interval (instruction sum over the
    /// slowest core's cycles; see `core_ipc` for per-core values).
    pub ipc: f64,
    /// Per-core IPC within the interval, indexed by core.
    pub core_ipc: Vec<f64>,
    /// L2 demand miss rate within the interval.
    pub l2_miss_rate: f64,
    /// Temporal prefetches issued within the interval.
    pub issued: u64,
    /// Temporal prefetches used within the interval.
    pub useful: u64,
    /// Temporal prefetches evicted dead within the interval.
    pub wasted: u64,
    /// Cumulative accuracy up to the end of the interval.
    pub accuracy_so_far: f64,
    /// Markov occupancy at the end of the interval.
    pub markov_occupancy: u64,
    /// Markov partition ways at the end of the interval.
    pub markov_ways: u64,
    /// Desired Markov ways at the end of the interval.
    pub desired_ways: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(end: u64, instr: u64, cyc: u64, hits: u64, misses: u64) -> IntervalSample {
        IntervalSample {
            end_access: end,
            instructions: instr,
            cycles: cyc,
            l2_demand_hits: hits,
            l2_demand_misses: misses,
            prefetches_issued: end / 2,
            temporal_used: end / 4,
            temporal_wasted: end / 8,
            dueller: [end; DUELLER_COUNTERS],
            ..Default::default()
        }
    }

    #[test]
    fn windows_difference_adjacent_samples() {
        let series = IntervalSeries {
            every: 100,
            samples: vec![
                sample(100, 1000, 500, 80, 20),
                sample(200, 1800, 900, 150, 50),
            ],
        };
        let w = series.windows();
        assert_eq!(w.len(), 2);
        assert!((w[0].ipc - 2.0).abs() < 1e-12);
        assert!((w[1].ipc - 2.0).abs() < 1e-12);
        assert!((w[0].l2_miss_rate - 0.2).abs() < 1e-12);
        assert!((w[1].l2_miss_rate - 0.3).abs() < 1e-12);
        assert_eq!(w[1].issued, 50);
        assert_eq!(w[1].useful, 25);
    }

    #[test]
    fn per_core_ipc_ignores_the_cycles_max() {
        // Two cores: a fast one (2.0 IPC) and a slow one (0.25 IPC).
        // The aggregate `instructions / cycles-max` (1.25 here) matches
        // neither; the per-core columns must recover both.
        let s = IntervalSample {
            end_access: 100,
            instructions: 2500,
            cycles: 2000,
            core_instructions: vec![2000, 500],
            core_cycles: vec![1000, 2000], /* skewed on purpose */
            ..Default::default()
        };
        let per_core = s.core_ipc_so_far();
        assert!((per_core[0] - 2.0).abs() < 1e-12);
        assert!((per_core[1] - 0.25).abs() < 1e-12);
        assert!((s.ipc_so_far() - 1.25).abs() < 1e-12);

        let series = IntervalSeries {
            every: 100,
            samples: vec![s],
        };
        let w = series.windows();
        assert_eq!(w[0].core_ipc.len(), 2);
        assert!((w[0].core_ipc[0] - 2.0).abs() < 1e-12);
        assert!((w[0].core_ipc[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn per_core_columns_snapshot_round_trip() {
        let mut s = sample(100, 1000, 500, 80, 20);
        s.core_cycles = vec![500, 400, 300];
        s.core_instructions = vec![600, 300, 100];
        let series = IntervalSeries {
            every: 100,
            samples: vec![s],
        };
        let mut w = SnapWriter::new();
        series.save(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut restored = IntervalSeries::new(100);
        let mut r = SnapReader::new(&bytes);
        restored.restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored, series);
    }

    #[test]
    fn cumulative_rates() {
        let s = sample(100, 1000, 500, 80, 20);
        assert!((s.ipc_so_far() - 2.0).abs() < 1e-12);
        assert!((s.l2_miss_rate_so_far() - 0.2).abs() < 1e-12);
        let judged = (s.temporal_used + s.temporal_wasted) as f64;
        assert!((s.accuracy_so_far() - s.temporal_used as f64 / judged).abs() < 1e-12);
        assert_eq!(IntervalSample::default().accuracy_so_far(), 0.0);
    }

    #[test]
    fn series_snapshot_round_trips() {
        let series = IntervalSeries {
            every: 250,
            samples: vec![
                sample(250, 9, 8, 7, 6),
                sample(500, 19, 18, 17, 16),
                sample(750, 29, 28, 27, 26),
            ],
        };
        let mut w = SnapWriter::new();
        series.save(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut restored = IntervalSeries::new(250);
        let mut r = SnapReader::new(&bytes);
        restored.restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored, series);
    }

    #[test]
    fn snapshot_period_mismatch_is_corrupt() {
        let series = IntervalSeries::new(250);
        let mut w = SnapWriter::new();
        series.save(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut other = IntervalSeries::new(300);
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(other.restore(&mut r), Err(SnapError::Corrupt(_))));
    }
}
