//! Diagnostic probe of the Triangel prefetcher in isolation (no memory
//! hierarchy): drives a strict repeating sequence and prints per-pass
//! confidence-counter evolution.
use triangel_core::{Triangel, TriangelConfig};
use triangel_prefetch::{NullCacheView, Prefetcher, TrainEvent, TrainKind};
use triangel_types::{LineAddr, Pc};

fn main() {
    let mut cfg = TriangelConfig::paper_default();
    cfg.sizing_window = 250_000;
    let mut pf = Triangel::new(cfg);
    let seq: Vec<u64> = (0..50_000u64).map(|i| 1000 + i * 3).collect();
    let mut out = Vec::new();
    let mut n = 0u64;
    for pass in 0..14 {
        let mut issued_this_pass = 0u64;
        for l in &seq {
            out.clear();
            pf.on_event(
                &TrainEvent {
                    pc: Pc::new(0x40),
                    line: LineAddr::new(*l),
                    kind: TrainKind::L2Miss,
                    cycle: n,
                    l2_fills: n,
                },
                &NullCacheView,
                &mut out,
            );
            issued_this_pass += out.len() as u64;
            n += 1;
        }
        let e = pf.training().entry(Pc::new(0x40)).unwrap();
        println!("pass {pass}: issued={issued_this_pass} base={} high={} reuse={} rate={} la2={} ways={} occ={} dbg={:?}",
            e.base_pattern_conf.get(), e.high_pattern_conf.get(), e.reuse_conf.get(), e.sample_rate.get(), e.lookahead2,
            pf.markov().ways(), pf.markov().occupancy(), pf.debug_counters());
    }
    println!("stats={:?}", pf.stats());
}
