//! DRAM and energy models for the Triangel simulator.
//!
//! * [`Dram`] — a queue-based main-memory model with a fixed access
//!   latency plus a bounded service bandwidth, so that excessive prefetch
//!   traffic (e.g. unconditional degree-4 Triage, Sections 6.3–6.4 of the
//!   paper) congests the channel and slows demand misses.
//! * [`EnergyModel`] — the paper's own unit model (Section 6.2): a DRAM
//!   access costs 25 units and an L3 access (data or Markov metadata)
//!   costs 1 unit.
//!
//! # Examples
//!
//! ```
//! use triangel_mem::{Dram, DramConfig};
//!
//! let mut dram = Dram::new(DramConfig::lpddr5());
//! let first = dram.request(1000, false);
//! let second = dram.request(1000, false);
//! assert!(second.completes_at > first.completes_at); // bandwidth-limited
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dram;
mod energy;

pub use dram::{Dram, DramConfig, DramRequestOutcome, DramStats};
pub use energy::{EnergyBreakdown, EnergyModel};
