//! Reproduces Fig. 11 of the paper (DRAM traffic). See DESIGN.md's experiment index.
//!
//! Declarative definition: `triangel_bench::figures` registry entry
//! `"fig11"`, executed by the `triangel-harness` scheduler
//! (`--jobs N` controls worker threads; results are identical for any
//! value).

fn main() {
    triangel_bench::figures::run_main("fig11");
}
