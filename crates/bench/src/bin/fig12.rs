//! Reproduces Fig. 12 of the paper (accuracy). See DESIGN.md's experiment index.
//!
//! Declarative definition: `triangel_bench::figures` registry entry
//! `"fig12"`, executed by the `triangel-harness` scheduler
//! (`--jobs N` controls worker threads; results are identical for any
//! value).

fn main() {
    triangel_bench::figures::run_main("fig12");
}
