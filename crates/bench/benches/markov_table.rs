//! Criterion micro-benchmarks for the Markov table: train and lookup
//! throughput under each metadata format (the operation behind every
//! row of Figs. 10-20).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use triangel_cache::replacement::PolicyKind;
use triangel_markov::{MarkovTableConfig, MarkovTableImpl, TargetFormat};
use triangel_types::{LineAddr, Pc};

fn table(format: TargetFormat, replacement: PolicyKind) -> MarkovTableImpl {
    let mut t = MarkovTableImpl::new(MarkovTableConfig {
        sets: 2048,
        max_ways: 8,
        format,
        tag_bits: 10,
        replacement,
    });
    t.set_ways(8);
    t
}

fn bench_train(c: &mut Criterion) {
    let mut g = c.benchmark_group("markov_train");
    for (name, format, repl) in [
        ("direct42_srrip", TargetFormat::Direct42, PolicyKind::Srrip),
        (
            "lut32_hawkeye",
            TargetFormat::triage_default(),
            PolicyKind::Hawkeye,
        ),
        ("ideal32_lru", TargetFormat::Ideal32, PolicyKind::Lru),
    ] {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut t = table(format, repl);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                t.train(
                    LineAddr::new(black_box(i % 100_000)),
                    LineAddr::new(black_box((i + 1) % 100_000)),
                    Pc::new(0x40),
                );
            });
        });
    }
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("markov_lookup");
    for (name, format) in [
        ("direct42", TargetFormat::Direct42),
        ("lut32", TargetFormat::triage_default()),
    ] {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut t = table(format, PolicyKind::Lru);
            for i in 0..100_000u64 {
                t.train(LineAddr::new(i), LineAddr::new(i + 1), Pc::new(0x40));
            }
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(7);
                black_box(t.lookup(LineAddr::new(i % 100_000)));
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_train, bench_lookup);
criterion_main!(benches);
