//! `trace_record`: captures any built-in generator to a ChampSim-style
//! binary trace file (see `triangel_workloads::trace_file`).
//!
//! Usage:
//!
//! ```text
//! trace_record --workload <label> --out <path.trc> [--seed N] [--accesses N]
//! ```
//!
//! `<label>` is any SPEC-like generator label (`MCF`, `Xalan`, ...) or
//! irregular-family label (`ZipfKV`, `GCChurn`, `HashJoin`,
//! `WebServe`). Recording is deterministic: the same label, seed, and
//! access count always produce byte-identical files (the header
//! checksum proves it). Replay the result with the `traces` figure
//! (`TRIANGEL_TRACE_FILE=<path.trc>`) or programmatically through
//! `WorkloadSpec::trace_file`.

use triangel_workloads::irregular::IrregularWorkload;
use triangel_workloads::spec::SpecWorkload;
use triangel_workloads::trace_file::record_trace;
use triangel_workloads::TraceSource;

fn usage() -> ! {
    let spec: Vec<&str> = SpecWorkload::ALL.iter().map(|w| w.label()).collect();
    let irr: Vec<&str> = IrregularWorkload::ALL.iter().map(|w| w.label()).collect();
    eprintln!(
        "usage: trace_record --workload <label> --out <path.trc> [--seed N] [--accesses N]\n\
         labels: {} | {}",
        spec.join(", "),
        irr.join(", ")
    );
    std::process::exit(2);
}

fn generator(label: &str, seed: u64) -> Option<Box<dyn TraceSource + Send>> {
    if let Some(wl) = SpecWorkload::ALL.into_iter().find(|w| w.label() == label) {
        return Some(Box::new(wl.generator(seed)));
    }
    IrregularWorkload::from_label(label).map(|wl| Box::new(wl.generator(seed)) as Box<_>)
}

fn main() {
    let mut workload: Option<String> = None;
    let mut out: Option<std::path::PathBuf> = None;
    let mut seed: u64 = 42;
    let mut accesses: u64 = 100_000;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--workload" => workload = Some(value("--workload")),
            "--out" => out = Some(value("--out").into()),
            "--seed" => seed = value("--seed").parse().expect("bad --seed"),
            "--accesses" => accesses = value("--accesses").parse().expect("bad --accesses"),
            _ => usage(),
        }
    }
    let (Some(workload), Some(out)) = (workload, out) else {
        usage();
    };
    let Some(mut src) = generator(&workload, seed) else {
        eprintln!("unknown workload `{workload}`");
        usage();
    };
    let header = record_trace(src.as_mut(), accesses, &out)
        .unwrap_or_else(|e| panic!("recording {}: {e}", out.display()));
    eprintln!(
        "[trace_record] {workload} seed {seed}: {} record(s), checksum {:016x} -> {}",
        header.records,
        header.checksum,
        out.display()
    );
}
