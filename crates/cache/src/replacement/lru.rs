//! True least-recently-used replacement.

use super::{AccessMeta, ReplacementPolicy, WayMask};

/// True LRU: a monotone timestamp per (set, way); the victim is the
/// eligible way with the smallest timestamp.
///
/// The paper notes (Section 3.2) that within a Markov cache line LRU can
/// be kept implicitly by ordering entries; for the simulator an explicit
/// timestamp is equivalent and simpler.
#[derive(Debug, Clone)]
pub struct Lru {
    ways: usize,
    stamp: Vec<u64>,
    clock: u64,
}

impl Lru {
    /// Creates LRU state for `sets x ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0);
        Lru {
            ways,
            stamp: vec![0; sets * ways],
            clock: 0,
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamp[set * self.ways + way] = self.clock;
    }
}

impl ReplacementPolicy for Lru {
    fn on_hit(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize, mask: WayMask) -> usize {
        assert!(mask != 0, "victim called with empty way mask");
        (0..self.ways)
            .filter(|w| mask & (1 << w) != 0)
            .min_by_key(|w| self.stamp[set * self.ways + w])
            .expect("mask selects at least one way")
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.stamp[set * self.ways + way] = 0;
    }
}

impl triangel_types::snap::Snapshot for Lru {
    fn save(
        &self,
        w: &mut triangel_types::snap::SnapWriter,
    ) -> Result<(), triangel_types::snap::SnapError> {
        w.usize(self.stamp.len());
        for s in &self.stamp {
            w.u64(*s);
        }
        w.u64(self.clock);
        Ok(())
    }

    fn restore(
        &mut self,
        r: &mut triangel_types::snap::SnapReader,
    ) -> Result<(), triangel_types::snap::SnapError> {
        r.expect_len(self.stamp.len(), "LRU stamps")?;
        for s in &mut self.stamp {
            *s = r.u64()?;
        }
        self.clock = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triangel_types::LineAddr;

    fn meta(v: u64) -> AccessMeta {
        AccessMeta::demand(LineAddr::new(v), None)
    }

    #[test]
    fn evicts_least_recent() {
        let mut lru = Lru::new(1, 4);
        for w in 0..4 {
            lru.on_fill(0, w, &meta(w as u64));
        }
        lru.on_hit(0, 0, &meta(0)); // way 0 becomes MRU; way 1 is LRU
        assert_eq!(lru.victim(0, 0b1111), 1);
    }

    #[test]
    fn hit_changes_order() {
        let mut lru = Lru::new(1, 2);
        lru.on_fill(0, 0, &meta(0));
        lru.on_fill(0, 1, &meta(1));
        assert_eq!(lru.victim(0, 0b11), 0);
        lru.on_hit(0, 0, &meta(0));
        assert_eq!(lru.victim(0, 0b11), 1);
    }

    #[test]
    fn invalidate_resets_priority() {
        let mut lru = Lru::new(1, 2);
        lru.on_fill(0, 0, &meta(0));
        lru.on_fill(0, 1, &meta(1));
        lru.on_hit(0, 0, &meta(0));
        lru.on_invalidate(0, 0);
        assert_eq!(lru.victim(0, 0b11), 0);
    }

    #[test]
    fn sets_are_independent() {
        let mut lru = Lru::new(2, 2);
        lru.on_fill(0, 0, &meta(0));
        lru.on_fill(0, 1, &meta(1));
        lru.on_fill(1, 1, &meta(2));
        lru.on_fill(1, 0, &meta(3));
        assert_eq!(lru.victim(0, 0b11), 0);
        assert_eq!(lru.victim(1, 0b11), 1);
    }
}
