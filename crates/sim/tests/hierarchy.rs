//! Direct tests of the memory system and timing engine.

use triangel_prefetch::{NullPrefetcher, Prefetcher};
use triangel_sim::{Engine, Experiment, MemorySystem, PrefetcherChoice, SystemConfig};
use triangel_types::{Addr, LineAddr, Pc};
use triangel_workloads::paging::PageMapper;
use triangel_workloads::temporal::StridedStream;
use triangel_workloads::trace::{MemoryAccess, RecordedTrace};

fn one_core_system() -> MemorySystem {
    MemorySystem::new(SystemConfig::tiny(), vec![Box::new(NullPrefetcher)])
}

#[test]
fn l1_hit_is_fast_and_miss_is_slow() {
    let mut sys = one_core_system();
    let line = LineAddr::new(0x40);
    let pc = Pc::new(0x4);
    let miss_ready = sys.demand_access(0, pc, line, 1000);
    // Cold miss goes to DRAM: far beyond the L1 latency.
    assert!(miss_ready > 1000 + 100, "cold miss too fast: {miss_ready}");
    let hit_ready = sys.demand_access(0, pc, line, miss_ready + 10);
    assert_eq!(
        hit_ready,
        miss_ready + 10 + sys.config().l1.hit_latency(),
        "L1 hit must cost exactly the L1 latency"
    );
}

#[test]
fn l2_hit_after_l1_eviction() {
    let mut sys = one_core_system();
    let pc = Pc::new(0x4);
    let target = LineAddr::new(0);
    sys.demand_access(0, pc, target, 0);
    // Evict `target` from the tiny L1 (4 KiB, 16 sets x 4 ways) by
    // filling its set with conflicting lines; they stay in the larger L2.
    let mut t = 10_000;
    for k in 1..=8u64 {
        t = sys.demand_access(0, pc, LineAddr::new(k * 16), t + 500);
    }
    let ready = sys.demand_access(0, pc, target, t + 50_000);
    let expected = t + 50_000 + sys.config().l1.hit_latency() + sys.config().l2.hit_latency();
    assert_eq!(ready, expected, "should be an L2 hit");
}

#[test]
fn distinct_lines_all_come_from_dram() {
    let mut sys = one_core_system();
    // Irregular strides so the baseline stride prefetcher cannot lock on.
    for k in 0..100u64 {
        let line = (k * k * 37) % 1_000_000;
        sys.demand_access(0, Pc::new(4), LineAddr::new(line), (k + 1) * 10_000);
    }
    let stats = sys.dram_stats();
    // Every distinct line must ultimately be fetched from DRAM, whether
    // by a demand miss or a prefetch that the demand then consumed.
    assert!(stats.total_reads() >= 99, "reads={}", stats.total_reads());
    assert!(stats.demand_reads <= 100);
}

#[test]
fn partition_request_shrinks_l3_data_ways() {
    // A prefetcher that always wants 4 ways of Markov partition.
    #[derive(Debug)]
    struct Greedy;
    impl Prefetcher for Greedy {
        fn on_event(
            &mut self,
            _ev: &triangel_prefetch::TrainEvent,
            _caches: &dyn triangel_prefetch::CacheView,
            _out: &mut Vec<triangel_prefetch::PrefetchRequest>,
        ) {
        }
        fn name(&self) -> &str {
            "greedy"
        }
        fn desired_markov_ways(&self) -> usize {
            4
        }
    }
    let mut sys = MemorySystem::new(SystemConfig::tiny(), vec![Box::new(Greedy)]);
    assert_eq!(sys.markov_ways(), 0);
    // Any L2 miss routes through train_temporal, which applies the wish.
    sys.demand_access(0, Pc::new(4), LineAddr::new(1), 100);
    assert_eq!(sys.markov_ways(), 4);
}

#[test]
fn engine_cycles_advance_monotonically() {
    let accesses: Vec<MemoryAccess> = (0..200)
        .map(|i| MemoryAccess::new(Pc::new(0x4), Addr::new(i * 64)))
        .collect();
    let sys = one_core_system();
    let mut engine = Engine::try_new(
        sys,
        vec![Box::new(RecordedTrace::new("t", accesses))],
        PageMapper::contiguous(),
    )
    .unwrap();
    engine.run_accesses(100);
    engine.start_measurement();
    engine.run_accesses(100);
    let report = engine.report("t".into());
    assert!(report.cores[0].cycles > 0);
    assert!(report.cores[0].instructions > 0);
}

#[test]
fn dependent_chains_are_slower_than_independent_streams() {
    // Same addresses; one trace dependent, one not. The dependent trace
    // serializes misses and must take longer.
    let make = |dependent: bool| {
        let accesses: Vec<MemoryAccess> = (0..2000u64)
            .map(|i| {
                let a = MemoryAccess::new(Pc::new(0x4), Addr::new((i * 977 % 4096) * 64));
                if dependent {
                    a.dependent()
                } else {
                    a
                }
            })
            .collect();
        RecordedTrace::new(if dependent { "dep" } else { "ind" }, accesses)
    };
    let run = |dep: bool| {
        let sys = MemorySystem::new(
            SystemConfig::paper_single_core(),
            vec![Box::new(NullPrefetcher)],
        );
        let mut engine =
            Engine::try_new(sys, vec![Box::new(make(dep))], PageMapper::contiguous()).unwrap();
        engine.start_measurement();
        engine.run_accesses(2000);
        engine.report("t".into()).cores[0].cycles
    };
    let dep_cycles = run(true);
    let ind_cycles = run(false);
    assert!(
        dep_cycles > ind_cycles * 2,
        "dependence must serialize: dep={dep_cycles} ind={ind_cycles}"
    );
}

#[test]
fn rob_bounds_memory_level_parallelism() {
    // With independent misses, a larger ROB must not *hurt*, and a
    // 1-entry-equivalent ROB must serialize like dependence does.
    let trace = || {
        let accesses: Vec<MemoryAccess> = (0..1000u64)
            .map(|i| MemoryAccess::new(Pc::new(0x4), Addr::new((i * 997 % 8192) * 64)))
            .collect();
        RecordedTrace::new("t", accesses)
    };
    let run = |rob: usize| {
        let mut cfg = SystemConfig::paper_single_core();
        cfg.rob_entries = rob;
        let sys = MemorySystem::new(cfg, vec![Box::new(NullPrefetcher)]);
        let mut engine =
            Engine::try_new(sys, vec![Box::new(trace())], PageMapper::contiguous()).unwrap();
        engine.start_measurement();
        engine.run_accesses(1000);
        engine.report("t".into()).cores[0].cycles
    };
    let narrow = run(4);
    let wide = run(288);
    assert!(
        narrow > wide * 3,
        "a tiny ROB must destroy MLP: narrow={narrow} wide={wide}"
    );
}

#[test]
fn stride_prefetcher_in_baseline_covers_streaming() {
    // A pure streaming scan: baseline (with its stride prefetcher)
    // should enjoy far fewer L2 demand misses than the raw access count.
    let r = Experiment::new(StridedStream::new(
        "scan",
        Pc::new(0x8),
        Addr::new(1 << 30),
        1,
        20_000, // fits the L3, so prefetch fills are not DRAM-bound
    ))
    .warmup(50_000)
    .accesses(100_000)
    .prefetcher(PrefetcherChoice::Baseline)
    .try_run()
    .unwrap();
    // The scan consumes one line per access, which exceeds the DRAM
    // channel's sustainable rate, so full coverage is impossible; the
    // stride prefetcher should still hide a healthy fraction.
    let misses = r.cores[0].l2.demand_misses;
    assert!(
        misses < 70_000,
        "stride prefetcher should cover a large part of a unit-stride scan, misses={misses}"
    );
}

#[test]
fn accuracy_formula_counts_resolved_lines_only() {
    use triangel_sim::CoreStats;
    // Pin the formula: used / (used + wasted), nothing else. Fills of
    // still-resident, never-touched lines must not enter the ratio.
    let s = CoreStats {
        temporal_fills: 100, // 60 still unresolved at measurement end
        temporal_used: 30,
        temporal_wasted: 10,
        ..Default::default()
    };
    assert!((s.accuracy() - 0.75).abs() < 1e-12);
    // No resolved lines: defined as zero, not NaN.
    let empty = CoreStats {
        temporal_fills: 5,
        ..Default::default()
    };
    assert_eq!(empty.accuracy(), 0.0);
}

#[test]
fn warmup_reset_zeroes_measurement_counters() {
    let sys = one_core_system();
    let accesses: Vec<MemoryAccess> = (0..100)
        .map(|i| MemoryAccess::new(Pc::new(4), Addr::new(i * 64)))
        .collect();
    let mut engine = Engine::try_new(
        sys,
        vec![Box::new(RecordedTrace::new("t", accesses))],
        PageMapper::contiguous(),
    )
    .unwrap();
    engine.run_accesses(100);
    engine.start_measurement();
    let r = engine.report("t".into());
    assert_eq!(
        r.cores[0].l2.demand_misses, 0,
        "stats must reset at measurement start"
    );
    assert_eq!(r.dram.total_reads(), 0);
}
