//! Golden-equivalence pins for the simulator's `RunReport`s.
//!
//! The sweeps live in [`triangel_harness::goldens`], shared with the
//! `bless` devtool. Three fixtures are pinned:
//!
//! * `golden_sweep.json` — generated *before* the in-line
//!   cache-metadata refactor (PR 2) from the side-table implementation
//!   of `MemorySystem`: default (gate-off) behaviour must stay
//!   byte-identical to it, at `--jobs 1` and `--jobs 8`.
//! * `golden_evict_train.json` — the same workload shapes with the
//!   `train_on_eviction` gate on for every Triangel-family job,
//!   blessed deliberately when the eviction-training mechanism landed.
//! * `golden_multicore.json` — four-core jobs on the contended N-core
//!   timing model, blessed when the shared-LLC/DRAM arbitration landed.
//!
//! A third test pins that the gate is *provably inert when off*: an
//! explicit gate-off feature override produces byte-identical reports
//! to no override at all.
//!
//! Regenerate (only when an *intentional* behaviour change is being
//! made, and say so in the commit):
//!
//! ```sh
//! cargo run -p triangel-bench --bin bless            # all fixtures
//! TRIANGEL_BLESS=1 cargo test -p triangel-harness --test golden
//! ```

use triangel_harness::goldens::{
    evict_train_fixture_path, evict_train_sweep, gated_features, golden_fixture_path, golden_sweep,
    multicore_fixture_path, multicore_sweep,
};
use triangel_harness::{emit, SweepOptions, TriangelFeatures};

fn bless_requested() -> bool {
    std::env::var("TRIANGEL_BLESS").is_ok_and(|v| v == "1")
}

#[test]
fn run_reports_match_pre_refactor_fixture_serial_and_parallel() {
    let path = golden_fixture_path();
    let serial = emit::sweep_to_json(&golden_sweep().run(&SweepOptions::serial()));

    if bless_requested() {
        std::fs::write(&path, &serial).expect("write fixture");
        eprintln!("blessed {}", path.display());
    }

    let fixture = std::fs::read_to_string(&path).expect(
        "missing fixture; generate with `cargo run -p triangel-bench --bin bless` \
         or TRIANGEL_BLESS=1 cargo test -p triangel-harness --test golden",
    );
    assert_eq!(
        serial, fixture,
        "serial sweep diverged from the committed pre-refactor RunReports"
    );

    let parallel = emit::sweep_to_json(&golden_sweep().run(&SweepOptions::parallel(8)));
    assert_eq!(
        parallel, fixture,
        "--jobs 8 sweep diverged from the committed pre-refactor RunReports"
    );
}

#[test]
fn evict_train_reports_match_blessed_fixture_serial_and_parallel() {
    let path = evict_train_fixture_path();
    let serial = emit::sweep_to_json(&evict_train_sweep().run(&SweepOptions::serial()));

    if bless_requested() {
        std::fs::write(&path, &serial).expect("write fixture");
        eprintln!("blessed {}", path.display());
    }

    let fixture = std::fs::read_to_string(&path).expect(
        "missing fixture; generate with `cargo run -p triangel-bench --bin bless` \
         or TRIANGEL_BLESS=1 cargo test -p triangel-harness --test golden",
    );
    assert_eq!(
        serial, fixture,
        "serial gate-on sweep diverged from the blessed eviction-training fixture"
    );

    let parallel = emit::sweep_to_json(&evict_train_sweep().run(&SweepOptions::parallel(8)));
    assert_eq!(
        parallel, fixture,
        "--jobs 8 gate-on sweep diverged from the blessed eviction-training fixture"
    );
}

#[test]
fn multicore_reports_match_blessed_fixture_serial_and_parallel() {
    let path = multicore_fixture_path();
    let serial = emit::sweep_to_json(&multicore_sweep().run(&SweepOptions::serial()));

    if bless_requested() {
        std::fs::write(&path, &serial).expect("write fixture");
        eprintln!("blessed {}", path.display());
    }

    let fixture = std::fs::read_to_string(&path).expect(
        "missing fixture; generate with `cargo run -p triangel-bench --bin bless` \
         or TRIANGEL_BLESS=1 cargo test -p triangel-harness --test golden",
    );
    assert_eq!(
        serial, fixture,
        "serial four-core sweep diverged from the blessed contention-model fixture"
    );

    let parallel = emit::sweep_to_json(&multicore_sweep().run(&SweepOptions::parallel(8)));
    assert_eq!(
        parallel, fixture,
        "--jobs 8 four-core sweep diverged from the blessed contention-model fixture"
    );
}

/// The gate must be provably inert when off: overriding a job's
/// features with its own defaults (gate off) may change the job *key*,
/// but must not change a byte of the report.
#[test]
fn explicit_gate_off_override_is_byte_identical_to_no_override() {
    for job in golden_sweep().jobs() {
        if !job.prefetcher.accepts_feature_override() {
            continue;
        }
        let off = TriangelFeatures {
            train_on_eviction: false,
            ..gated_features(job.prefetcher)
        };
        let overridden = job.clone().features(off);
        assert_ne!(job.key(), overridden.key(), "override must enter the key");
        let plain = job.run().expect("golden job runs");
        let gated_off = overridden.run().expect("overridden job runs");
        assert_eq!(
            format!("{plain:?}"),
            format!("{gated_off:?}"),
            "gate-off override changed behaviour for {}",
            job.key()
        );
    }
}
