//! The fixed Triage baseline (Wu et al., MICRO 2019 / IEEE TC 2022).
//!
//! This is the "implementable Triage" the paper constructs in Section 3:
//! the PC-indexed training table, the Markov table stored in an L3
//! partition with set + sub-set indexing, 32-bit entries with a
//! 1024-entry lookup table (or any of the Fig. 18 format variants),
//! HawkEye entry replacement, the confidence bit used for same-index
//! replacement, and Bloom-filter partition sizing (Section 3.5).
//!
//! Evaluated configurations map to [`TriageConfig`] presets:
//! * `Triage` — degree 1, lookahead 1 ([`TriageConfig::paper_default`]).
//! * `Triage-Deg4` — unconditional degree 4 ([`TriageConfig::degree4`]).
//! * `Triage-Deg4-Look2` — degree 4 plus Triangel's lookahead-2 applied
//!   to Triage ([`TriageConfig::degree4_lookahead2`]).
//!
//! # Examples
//!
//! ```
//! use triangel_triage::{Triage, TriageConfig};
//! use triangel_prefetch::{NullCacheView, Prefetcher, TrainEvent, TrainKind};
//! use triangel_types::{LineAddr, Pc};
//!
//! let mut pf = Triage::new(TriageConfig::paper_default());
//! let mut out = Vec::new();
//! // Two passes over the same miss sequence from one PC.
//! for pass in 0..2 {
//!     for line in [10u64, 20, 30, 40] {
//!         out.clear();
//!         let ev = TrainEvent {
//!             pc: Pc::new(0x400),
//!             line: LineAddr::new(line),
//!             kind: TrainKind::L2Miss,
//!             cycle: 0,
//!             l2_fills: 0,
//!         };
//!         pf.on_event(&ev, &NullCacheView, &mut out);
//!     }
//!     let _ = pass;
//! }
//! // On the second pass, seeing 10 predicts 20, etc.
//! assert!(!out.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod training;

pub use training::{TrainingTable, TrainingUpdate};

use triangel_markov::{MarkovTableConfig, MarkovTableImpl};
use triangel_prefetch::{
    BloomFilter, CacheView, EvictNotice, IssueTable, PrefetchRequest, Prefetcher, PrefetcherStats,
    TrainEvent, TrainKind,
};
use triangel_types::{Cycle, LineAddr};

/// Configuration of the Triage prefetcher.
#[derive(Debug, Clone, Copy)]
pub struct TriageConfig {
    /// Chained prefetches per trigger (1 or 4 in the paper).
    pub degree: usize,
    /// Training lookahead: 1 stores `(prev, cur)`; 2 stores
    /// `(prev_prev, cur)` (Triangel's mechanism applied to Triage for
    /// the `Triage-Deg4-Look2` configuration).
    pub lookahead: usize,
    /// Markov-table geometry and format.
    pub table: MarkovTableConfig,
    /// Training-table entries (512, as in Triangel's Table 1 sizing).
    pub training_entries: usize,
    /// Cycles per Markov-partition access: 20 L3 cycles + 5 for
    /// compressed-metadata handling (Section 5).
    pub markov_latency: Cycle,
    /// Bits in the sizing Bloom filter.
    pub bloom_bits: usize,
    /// Accesses per sizing window (the paper's 30M-instruction window
    /// scaled to prefetcher events).
    pub sizing_window: u64,
    /// Train on L2 eviction notices: the Triage-compatible subset of
    /// Triangel's experimental `train_on_eviction` gate (Markov-entry
    /// reinforcement only — Triage has no pattern classifiers).
    /// **Off in every shipped preset**; enabling it is an explicit
    /// opt-in and a behaviour change.
    pub train_on_eviction: bool,
}

impl TriageConfig {
    /// The paper's default Triage: degree 1.
    pub fn paper_default() -> Self {
        TriageConfig {
            degree: 1,
            lookahead: 1,
            table: MarkovTableConfig::triage(),
            training_entries: 512,
            markov_latency: 25,
            bloom_bits: 1 << 20, // ~131 KiB: the "too large" structure of Sec. 3.5
            sizing_window: 250_000,
            train_on_eviction: false,
        }
    }

    /// `Triage-Deg4`: unconditional degree 4.
    pub fn degree4() -> Self {
        TriageConfig {
            degree: 4,
            ..TriageConfig::paper_default()
        }
    }

    /// `Triage-Deg4-Look2`: degree 4 with lookahead 2.
    pub fn degree4_lookahead2() -> Self {
        TriageConfig {
            degree: 4,
            lookahead: 2,
            ..TriageConfig::paper_default()
        }
    }

    /// Same config with a different Markov format (Fig. 18 sweep).
    #[must_use]
    pub fn with_format(mut self, format: triangel_markov::TargetFormat) -> Self {
        self.table.format = format;
        self
    }

    /// Same config with eviction-time training enabled (explicit
    /// opt-in; no shipped preset sets it).
    #[must_use]
    pub fn with_evict_training(mut self) -> Self {
        self.train_on_eviction = true;
        self
    }
}

/// The Triage prefetcher.
#[derive(Debug)]
pub struct Triage {
    cfg: TriageConfig,
    training: TrainingTable,
    markov: MarkovTableImpl,
    bloom: BloomFilter,
    window_left: u64,
    desired_ways: usize,
    issued: u64,
    name: String,
    /// L2 eviction notices for own (temporal) fills: (died used,
    /// died unused). Always counted; surfaced via the probe registry.
    evict_seen: (u64, u64),
    /// Eviction-training state, live only behind
    /// `cfg.train_on_eviction`: which Markov entry produced each
    /// resident temporal fill, and how many entry updates applied.
    issue_table: IssueTable,
    evict_trained: u64,
}

impl Triage {
    /// Builds Triage from its configuration.
    pub fn new(cfg: TriageConfig) -> Self {
        let mut name = match (cfg.degree, cfg.lookahead) {
            (1, 1) => "Triage".to_string(),
            (4, 1) => "Triage-Deg4".to_string(),
            (4, 2) => "Triage-Deg4-Look2".to_string(),
            (d, l) => format!("Triage-Deg{d}-Look{l}"),
        };
        if cfg.train_on_eviction {
            name.push_str("+EvictTrain");
        }
        Triage {
            training: TrainingTable::new(cfg.training_entries, cfg.lookahead),
            markov: MarkovTableImpl::new(cfg.table),
            bloom: BloomFilter::new(cfg.bloom_bits, 4),
            window_left: cfg.sizing_window,
            desired_ways: 0,
            issued: 0,
            cfg,
            name,
            evict_seen: (0, 0),
            issue_table: IssueTable::paper_l2(),
            evict_trained: 0,
        }
    }

    /// Read access to the Markov table (for experiments and tests).
    pub fn markov(&self) -> &MarkovTableImpl {
        &self.markov
    }

    /// Processes one training event with a statically-known cache view.
    ///
    /// The monomorphized form of [`Prefetcher::on_event`]: the
    /// simulator's enum-dispatched pipeline calls it directly so the
    /// Markov train/lookup walk (and its HawkEye entry replacement)
    /// inlines without a virtual call. The trait method forwards here.
    pub fn handle<V: CacheView + ?Sized>(
        &mut self,
        ev: &TrainEvent,
        _caches: &V,
        out: &mut Vec<PrefetchRequest>,
    ) {
        if !matches!(ev.kind, TrainKind::L2Miss | TrainKind::L2PrefetchHit) {
            return;
        }
        self.update_sizing(ev.line);

        // Train the Markov table from the per-PC history.
        let update = self.training.update(ev.pc, ev.line);
        if let Some(prev) = update.train_index {
            self.markov.train(prev, ev.line, ev.pc);
        }

        // Generate chained prefetches from the current address.
        let mut cursor = ev.line;
        for hop in 0..self.cfg.degree {
            let Some(hit) = self.markov.lookup(cursor) else {
                break;
            };
            let delay = (hop as Cycle + 1) * self.cfg.markov_latency;
            out.push(PrefetchRequest {
                line: hit.target,
                pc: ev.pc,
                issue_delay: delay,
            });
            self.issued += 1;
            if self.cfg.train_on_eviction {
                // Remember which entry predicted this line so its
                // eventual death can settle the entry.
                self.issue_table.record(hit.target, cursor);
            }
            cursor = hit.target;
        }
    }

    /// Grows the partition target to fit the unique indices seen this
    /// window (Section 3.5: a Bloom miss means a never-seen address, so
    /// the target size is increased to fit it). Shrinks only at window
    /// boundaries.
    fn update_sizing(&mut self, line: LineAddr) {
        let seen = self.bloom.insert(line.index());
        if !seen {
            let epl = self.cfg.table.format.entries_per_line();
            let per_way = self.cfg.table.sets * epl;
            let needed = (self.bloom.unique_inserts() as usize).div_ceil(per_way);
            if needed > self.desired_ways {
                self.desired_ways = needed.min(self.cfg.table.max_ways);
                self.markov.set_ways(self.desired_ways);
            }
        }
        self.window_left -= 1;
        if self.window_left == 0 {
            self.window_left = self.cfg.sizing_window;
            // New window: re-derive the target from fresh observations.
            let epl = self.cfg.table.format.entries_per_line();
            let per_way = self.cfg.table.sets * epl;
            self.bloom.reset();
            // Keep current allocation until the new window justifies a
            // different size; record the floor so shrink happens lazily.
            let _ = per_way;
        }
    }
}

impl Prefetcher for Triage {
    fn on_event(
        &mut self,
        ev: &TrainEvent,
        caches: &dyn CacheView,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.handle(ev, caches, out);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn desired_markov_ways(&self) -> usize {
        self.desired_ways
    }

    fn stats(&self) -> PrefetcherStats {
        let m = self.markov.stats();
        PrefetcherStats {
            prefetches_issued: self.issued,
            markov_reads: m.reads,
            markov_writes: m.writes,
            mrb_hits: 0,
            updates_suppressed: 0,
        }
    }

    /// Eviction feedback: death diagnostics always; behind
    /// `cfg.train_on_eviction`, the Triage-compatible subset of
    /// eviction-time training — the Markov entry that predicted the
    /// dying line is reinforced (used death) or weakened/dropped
    /// (wasted death, skipping *premature* deaths whose fill never
    /// completed). Triage has no pattern classifiers, so there is no
    /// confidence-counter path here.
    fn on_l2_evict(&mut self, notice: &EvictNotice) {
        match notice.temporal_death() {
            Some(true) => self.evict_seen.1 += 1,
            Some(false) => self.evict_seen.0 += 1,
            None => {}
        }
        if !self.cfg.train_on_eviction {
            return;
        }
        let Some(wasted) = notice.temporal_death() else {
            return;
        };
        if wasted && notice.premature() {
            return;
        }
        if let Some(pred) = self.issue_table.take(notice.line) {
            if self.markov.train_on_evict(pred, notice.line, !wasted) {
                self.evict_trained += 1;
            }
        }
    }

    fn probe(&self, out: &mut triangel_obs::ProbeSet) {
        out.record("desired_ways", self.desired_ways as u64);
        out.record("issued", self.issued);
        out.record("evict_deaths_used", self.evict_seen.0);
        out.record("evict_deaths_wasted", self.evict_seen.1);
        out.record("evict_trained", self.evict_trained);
        out.scoped("markov", |out| {
            triangel_obs::Probe::probe(&self.markov, out);
        });
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for Triage {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.training.save(w)?;
        self.markov.save(w)?;
        self.bloom.save(w)?;
        w.u64(self.window_left);
        w.usize(self.desired_ways);
        w.u64(self.issued);
        w.u64(self.evict_seen.0);
        w.u64(self.evict_seen.1);
        self.issue_table.save(w)?;
        w.u64(self.evict_trained);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.training.restore(r)?;
        self.markov.restore(r)?;
        self.bloom.restore(r)?;
        self.window_left = r.u64()?;
        self.desired_ways = r.usize()?;
        self.issued = r.u64()?;
        self.evict_seen.0 = r.u64()?;
        self.evict_seen.1 = r.u64()?;
        self.issue_table.restore(r)?;
        self.evict_trained = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triangel_prefetch::NullCacheView;
    use triangel_types::Pc;

    fn ev(pc: u64, line: u64) -> TrainEvent {
        TrainEvent {
            pc: Pc::new(pc),
            line: LineAddr::new(line),
            kind: TrainKind::L2Miss,
            cycle: 0,
            l2_fills: 0,
        }
    }

    fn drive(pf: &mut Triage, pc: u64, lines: &[u64]) -> Vec<PrefetchRequest> {
        let mut all = Vec::new();
        let mut out = Vec::new();
        for l in lines {
            out.clear();
            pf.on_event(&ev(pc, *l), &NullCacheView, &mut out);
            all.extend(out.iter().copied());
        }
        all
    }

    #[test]
    fn second_pass_prefetches_successors() {
        let mut pf = Triage::new(TriageConfig::paper_default());
        drive(&mut pf, 1, &[10, 20, 30, 40]);
        let reqs = drive(&mut pf, 1, &[10]);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].line, LineAddr::new(20));
        assert_eq!(reqs[0].issue_delay, 25);
    }

    #[test]
    fn degree4_chains_lookups() {
        let mut pf = Triage::new(TriageConfig::degree4());
        drive(&mut pf, 1, &[10, 20, 30, 40, 50]);
        let reqs = drive(&mut pf, 1, &[10]);
        let lines: Vec<u64> = reqs.iter().map(|r| r.line.index()).collect();
        assert_eq!(lines, vec![20, 30, 40, 50]);
        // Chained walks pay the metadata latency per hop.
        assert_eq!(reqs[3].issue_delay, 4 * 25);
    }

    #[test]
    fn lookahead2_stores_skip_pairs() {
        let mut pf = Triage::new(TriageConfig::degree4_lookahead2());
        drive(&mut pf, 1, &[10, 20, 30, 40, 50]);
        let reqs = drive(&mut pf, 1, &[10]);
        assert!(!reqs.is_empty());
        // (10 -> 30): the entry skips the immediate successor.
        assert_eq!(reqs[0].line, LineAddr::new(30));
    }

    #[test]
    fn pc_localization_separates_streams() {
        let mut pf = Triage::new(TriageConfig::paper_default());
        // Interleaved PCs with different sequences.
        let mut out = Vec::new();
        for (a, b) in [(10u64, 100u64), (20, 200), (30, 300)] {
            out.clear();
            pf.on_event(&ev(0x40, a), &NullCacheView, &mut out);
            out.clear();
            pf.on_event(&ev(0x80, b), &NullCacheView, &mut out);
        }
        let reqs = drive(&mut pf, 0x40, &[10]);
        assert_eq!(
            reqs[0].line,
            LineAddr::new(20),
            "PC 0x40's stream must not see PC 0x80's"
        );
    }

    #[test]
    fn partition_grows_with_footprint() {
        let mut pf = Triage::new(TriageConfig::paper_default());
        assert_eq!(pf.desired_markov_ways(), 0);
        // Touch far more unique lines than one way holds
        // (64-set test table would differ; default is 2048 sets x 16/line
        // = 32768 per way).
        let lines: Vec<u64> = (0..40_000u64).map(|k| k * 7).collect();
        drive(&mut pf, 1, &lines);
        assert!(pf.desired_markov_ways() >= 1);
        assert!(pf.markov().ways() >= 1);
    }

    #[test]
    fn ignores_l1_events() {
        let mut pf = Triage::new(TriageConfig::paper_default());
        let mut out = Vec::new();
        let mut e = ev(1, 10);
        e.kind = TrainKind::L1Access;
        pf.on_event(&e, &NullCacheView, &mut out);
        assert_eq!(pf.stats().markov_writes, 0);
    }

    #[test]
    fn stats_count_markov_traffic() {
        let mut pf = Triage::new(TriageConfig::degree4());
        drive(&mut pf, 1, &[10, 20, 30, 40, 50]);
        let before = pf.stats().markov_reads;
        drive(&mut pf, 1, &[10]);
        let after = pf.stats().markov_reads;
        // Degree-4 walk = 4 chained reads (plus the trigger's own).
        assert!(after - before >= 4, "chained reads uncounted");
    }

    #[test]
    fn names_match_paper_configs() {
        assert_eq!(Triage::new(TriageConfig::paper_default()).name(), "Triage");
        assert_eq!(Triage::new(TriageConfig::degree4()).name(), "Triage-Deg4");
        assert_eq!(
            Triage::new(TriageConfig::degree4_lookahead2()).name(),
            "Triage-Deg4-Look2"
        );
        assert_eq!(
            Triage::new(TriageConfig::degree4().with_evict_training()).name(),
            "Triage-Deg4+EvictTrain"
        );
    }

    #[test]
    fn eviction_gate_is_off_in_every_preset() {
        assert!(!TriageConfig::paper_default().train_on_eviction);
        assert!(!TriageConfig::degree4().train_on_eviction);
        assert!(!TriageConfig::degree4_lookahead2().train_on_eviction);
    }

    fn temporal_notice(line: u64, used: bool) -> EvictNotice {
        EvictNotice {
            line: LineAddr::new(line),
            meta: triangel_types::LineMeta {
                source: triangel_types::FillSource::Temporal,
                ready_at: 10,
                used,
                fill_seq: 1,
            },
            was_unused_prefetch: !used,
            evict_cycle: 100,
            evict_seq: 2,
            fill_pc: Some(Pc::new(1)),
        }
    }

    #[test]
    fn eviction_training_reinforces_used_predictions() {
        let mut pf = Triage::new(TriageConfig::paper_default().with_evict_training());
        drive(&mut pf, 0x40, &[10, 20, 30, 40]);
        let reqs = drive(&mut pf, 0x40, &[10]); // predicts 20 from entry 10
        assert_eq!(reqs[0].line, LineAddr::new(20));
        pf.on_l2_evict(&temporal_notice(20, true));
        assert_eq!(pf.evict_trained, 1);
        assert_eq!(
            pf.markov().peek(LineAddr::new(10)),
            Some((LineAddr::new(20), true)),
            "used death set the confidence bit"
        );
        // The confident entry now survives one conflicting retrain
        // (bit cleared, target kept) instead of being replaced. PC
        // 0x80 does not alias 0x40's training slot.
        drive(&mut pf, 0x80, &[10, 99]);
        assert_eq!(
            pf.markov().peek(LineAddr::new(10)),
            Some((LineAddr::new(20), false)),
            "reinforced entry survives one conflicting retrain"
        );
    }

    #[test]
    fn eviction_training_drops_wasted_predictions() {
        let mut pf = Triage::new(TriageConfig::paper_default().with_evict_training());
        drive(&mut pf, 0x40, &[10, 20, 30, 40]);
        let reqs = drive(&mut pf, 0x40, &[10]);
        assert_eq!(reqs[0].line, LineAddr::new(20));
        // (10 -> 20) was never confident; a wasted death drops it.
        pf.on_l2_evict(&temporal_notice(20, false));
        assert_eq!(pf.evict_trained, 1);
        assert_eq!(
            pf.markov().peek(LineAddr::new(10)),
            None,
            "discredited entry is gone"
        );
    }

    #[test]
    fn eviction_notices_are_inert_without_the_gate() {
        let mut pf = Triage::new(TriageConfig::paper_default());
        drive(&mut pf, 1, &[10, 20, 30, 40]);
        let before = format!("{:?}", pf.markov().stats());
        pf.on_l2_evict(&temporal_notice(20, false));
        assert_eq!(pf.evict_trained, 0);
        assert_eq!(format!("{:?}", pf.markov().stats()), before);
        assert_eq!(pf.evict_seen, (0, 1), "diagnostics still count");
        let reqs = drive(&mut pf, 1, &[10]);
        assert_eq!(reqs[0].line, LineAddr::new(20), "entry untouched");
    }
}
