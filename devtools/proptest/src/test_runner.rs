//! Deterministic case RNG and test-case error plumbing.

use std::fmt;

/// Deterministic RNG (splitmix64) seeded from the test's module path and
/// case index, so every run of a test generates the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test identified by `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// A rejected (skipped) case.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }

    /// Whether this is a rejection rather than a failure.
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject => write!(f, "input rejected"),
        }
    }
}
