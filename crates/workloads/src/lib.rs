//! Workload generation for the Triangel reproduction.
//!
//! The paper evaluates on the seven most irregular, memory-intensive SPEC
//! CPU2006 workloads, multiprogrammed pairs of them, and Graph500 BFS as
//! an adversarial case. SPEC itself cannot be redistributed, so this crate
//! generates synthetic access streams that reproduce the *temporal
//! structure* the paper's analysis attributes to each benchmark (see
//! DESIGN.md for the substitution argument), plus a real Graph500
//! implementation (Kronecker generator + CSR + BFS) whose address stream
//! is traced directly.
//!
//! * [`trace`] — the access-record format and the [`TraceSource`] trait.
//! * [`trace_file`] — ChampSim-style binary trace files: recording any
//!   source to disk and replaying with an explicit end-of-trace policy.
//! * [`paging`] — virtual-to-physical translation with controllable
//!   fragmentation (drives the paper's Fig. 18/19 lookup-table study).
//! * [`temporal`] — composable building blocks: repeating temporal
//!   streams, strided scans, uniform-random noise.
//! * [`spec`] — the seven SPEC-like workload definitions.
//! * [`irregular`] — the server-side irregular families: zipfian KV
//!   store, GC/allocator churn, hash join, web-serving sessions.
//! * [`graph500`] — Kronecker graph generation, CSR construction, and a
//!   traced BFS.
//! * [`mix`] — weighted interleaving of streams into one core's trace.
//!
//! # Examples
//!
//! ```
//! use triangel_workloads::spec::SpecWorkload;
//! use triangel_workloads::trace::TraceSource;
//!
//! let mut gen = SpecWorkload::Mcf.generator(42);
//! let first = gen.next_access();
//! assert!(first.vaddr.get() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod graph500;
pub mod irregular;
pub mod mix;
pub mod paging;
pub mod spec;
pub mod temporal;
pub mod trace;
pub mod trace_file;

pub use trace::{AccessRing, MemoryAccess, TraceSource};
