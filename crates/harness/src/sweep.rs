//! The sweep scheduler: dedup, cache, parallel execution, reporting.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use triangel_obs::TraceArg;
use triangel_sim::RunReport;
use triangel_store::{Claim, ResultStore};

use crate::job::JobSpec;
use crate::pool;
use crate::service::Client;

/// A failed job, carrying enough context to point at the bad spec.
#[derive(Debug, Clone)]
pub struct JobError {
    /// The job's content key.
    pub key: String,
    /// The underlying simulator error, rendered.
    pub message: String,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job `{}` failed: {}", self.key, self.message)
    }
}

impl std::error::Error for JobError {}

/// Content-keyed cache of finished runs.
///
/// A sweep always consults a cache (its own, or one shared across
/// sweeps via [`SweepOptions::cache`]): before a job is scheduled its
/// key is looked up, and every job that resolves without executing —
/// whether from an earlier sweep or deduplicated within the current
/// one — counts as a hit.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: Mutex<HashMap<String, Arc<RunReport>>>,
    hits: AtomicUsize,
    lookups: AtomicUsize,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// The report cached under `key`, if any (counts as a hit).
    pub fn get(&self, key: &str) -> Option<Arc<RunReport>> {
        let hit = self.entries.lock().unwrap().get(key).cloned();
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Stores a finished run.
    pub fn insert(&self, key: String, report: Arc<RunReport>) {
        self.entries.lock().unwrap().insert(key, report);
    }

    /// Total hits since construction.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups since construction.
    pub fn lookups(&self) -> usize {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Total misses since construction (`lookups − hits`).
    pub fn misses(&self) -> usize {
        self.lookups() - self.hits()
    }

    /// Number of cached runs.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().unwrap().is_empty()
    }
}

/// Where per-job progress lines go.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Progress {
    /// No progress output.
    #[default]
    Silent,
    /// One line per finished job on stderr.
    Stderr,
}

/// How a sweep executes.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Progress reporting.
    pub progress: Progress,
    /// Cache shared with other sweeps (e.g. across the figures of one
    /// `all_figures` run). `None` gives the sweep a private cache.
    pub cache: Option<Arc<ResultCache>>,
    /// Host-side trace buffer. When set, the sweep records one
    /// wall-time span per executed job (worker lanes fall out of the
    /// per-thread `tid`s), a [`ResultCache`] hit/miss counter sample
    /// (plus a [`ResultStore`] one when a store is attached), and a
    /// whole-sweep span. Host-only: simulation output is
    /// byte-identical with or without it.
    pub trace: Option<Arc<triangel_obs::TraceBuffer>>,
    /// On-disk result store shared across processes. When set, jobs
    /// resolve from persisted entries before executing, executions are
    /// coordinated through [`ResultStore::claim_blocking`] (exactly
    /// once store-wide, even with concurrent processes), and finished
    /// reports are published back. Results are byte-identical with or
    /// without a store.
    pub store: Option<Arc<ResultStore>>,
    /// Simulation daemon connection. When set, every job the wire
    /// protocol can express executes remotely (the daemon applies its
    /// own store and pool); inexpressible jobs — boxed custom
    /// workloads, pre-built graphs — fall back to local execution.
    /// Results are byte-identical to local execution.
    pub remote: Option<Arc<Client>>,
}

impl SweepOptions {
    /// One worker, silent — the reference configuration.
    pub fn serial() -> Self {
        SweepOptions {
            workers: 1,
            ..SweepOptions::default()
        }
    }

    /// `workers` threads (`0` = one per core), silent.
    pub fn parallel(workers: usize) -> Self {
        SweepOptions {
            workers,
            ..SweepOptions::default()
        }
    }

    /// Resolved worker count.
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            pool::default_workers()
        } else {
            self.workers
        }
    }

    /// Enables per-job progress lines on stderr.
    #[must_use]
    pub fn with_progress(mut self) -> Self {
        self.progress = Progress::Stderr;
        self
    }

    /// Shares `cache` with this sweep.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<ResultCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Records host-side wall-time spans into `trace`.
    #[must_use]
    pub fn with_trace(mut self, trace: Arc<triangel_obs::TraceBuffer>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Shares the on-disk `store` with this sweep (see
    /// [`SweepOptions::store`]).
    #[must_use]
    pub fn with_store(mut self, store: Arc<ResultStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Executes expressible jobs on the daemon behind `client` (see
    /// [`SweepOptions::remote`]).
    #[must_use]
    pub fn with_remote(mut self, client: Arc<Client>) -> Self {
        self.remote = Some(client);
        self
    }
}

/// Execution counters for one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Jobs requested.
    pub jobs: usize,
    /// Simulations actually executed for this sweep — locally, or on
    /// the daemon when a connection is attached. Jobs served from a
    /// cache, the on-disk store, or another process's concurrent
    /// execution do not count.
    pub executed: usize,
    /// Jobs satisfied without executing (dedup within the sweep plus
    /// hits on a shared cache, the on-disk store, or the daemon's
    /// store).
    pub cache_hits: usize,
    /// Jobs that failed with a [`JobError`].
    pub errors: usize,
}

/// Results of one sweep, in job order.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-job outcome, indexed like the submitted job list.
    pub results: Vec<Result<Arc<RunReport>, JobError>>,
    /// The job keys, indexed like `results`.
    pub keys: Vec<String>,
    /// Execution counters.
    pub stats: SweepStats,
}

impl SweepReport {
    /// The report of job `idx`.
    ///
    /// # Panics
    ///
    /// Panics (with the job's own error) if the job failed.
    pub fn report(&self, idx: usize) -> &RunReport {
        match &self.results[idx] {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }
}

/// A flat list of jobs to run as one unit.
///
/// Jobs with equal keys are executed once. Use [`crate::GridSpec`] for
/// the common rows × columns shape.
#[derive(Debug, Default)]
pub struct Sweep {
    jobs: Vec<JobSpec>,
}

impl Sweep {
    /// An empty sweep.
    pub fn new() -> Self {
        Sweep::default()
    }

    /// Adds a job, returning its index in the report.
    pub fn push(&mut self, job: JobSpec) -> usize {
        self.jobs.push(job);
        self.jobs.len() - 1
    }

    /// Adds a job, builder-style.
    #[must_use]
    pub fn job(mut self, job: JobSpec) -> Self {
        self.jobs.push(job);
        self
    }

    /// The jobs submitted so far.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Runs every job and returns results in submission order.
    ///
    /// Deterministic: for a fixed job list (and cache contents), the
    /// report is identical whatever `opts.workers` is.
    pub fn run(&self, opts: &SweepOptions) -> SweepReport {
        let cache = opts.cache.clone().unwrap_or_default();
        let store = opts.store.as_deref();
        let keys: Vec<String> = self.jobs.iter().map(JobSpec::key).collect();

        // Resolve each job to either a cached report or a slot in the
        // unique to-run list (first occurrence of each key wins). The
        // on-disk store resolves like a shared cache: some earlier
        // process already ran the job.
        enum Resolution {
            Cached(Arc<RunReport>),
            Pending(usize),
        }
        let mut to_run: Vec<&JobSpec> = Vec::new();
        let mut pending_of_key: HashMap<&str, usize> = HashMap::new();
        let resolutions: Vec<Resolution> = self
            .jobs
            .iter()
            .zip(&keys)
            .map(|(job, key)| {
                if let Some(cached) = cache.get(key) {
                    return Resolution::Cached(cached);
                }
                if let Some(&slot) = pending_of_key.get(key.as_str()) {
                    return Resolution::Pending(slot);
                }
                if let Some(report) = store.and_then(|s| s.get(key)) {
                    cache.insert(key.clone(), Arc::clone(&report));
                    return Resolution::Cached(report);
                }
                let slot = to_run.len();
                to_run.push(job);
                pending_of_key.insert(key, slot);
                Resolution::Pending(slot)
            })
            .collect();

        let done = AtomicUsize::new(0);
        let total = to_run.len();
        let progress = opts.progress;
        let trace = opts.trace.as_deref();
        let sweep_start = trace.map(|t| t.now_us());
        let executed_n = AtomicUsize::new(0);

        // Jobs the wire protocol can express run on the daemon as one
        // batch; the rest (and, on a dead daemon, everything) run on
        // the local pool below. Either way each slot's bytes are the
        // same — remote execution is the same simulation.
        let mut remote_results: HashMap<usize, crate::service::RemoteOutcome> = HashMap::new();
        if let Some(client) = &opts.remote {
            let slots: Vec<usize> = (0..total)
                .filter(|&i| crate::service::remotable(to_run[i]))
                .collect();
            if !slots.is_empty() {
                let jobs: Vec<JobSpec> = slots.iter().map(|&i| to_run[i].clone()).collect();
                match client.run_jobs(&jobs, progress == Progress::Stderr) {
                    Ok(outcomes) => {
                        for (&slot, outcome) in slots.iter().zip(outcomes) {
                            remote_results.insert(slot, outcome);
                        }
                    }
                    Err(e) => {
                        eprintln!("[harness] daemon unavailable ({e}); executing locally")
                    }
                }
            }
        }

        // Execute the unique jobs in parallel.
        let executed: Vec<Result<Arc<RunReport>, JobError>> =
            pool::run_indexed(total, opts.effective_workers(), |i| {
                let job = to_run[i];
                let run_local = || {
                    executed_n.fetch_add(1, Ordering::Relaxed);
                    let job_start = trace.map(|t| t.now_us());
                    let outcome = job.run().map(Arc::new).map_err(|e| JobError {
                        key: job.key(),
                        message: e.to_string(),
                    });
                    if let (Some(t), Some(start)) = (trace, job_start) {
                        t.complete(
                            &format!("job {}", job.workload.label()),
                            "job",
                            start,
                            vec![
                                ("key".to_string(), TraceArg::Str(job.key())),
                                ("ok".to_string(), TraceArg::U64(outcome.is_ok() as u64)),
                            ],
                        );
                    }
                    outcome
                };
                let outcome = if let Some(remote) = remote_results.get(&i) {
                    if !remote.from_store {
                        executed_n.fetch_add(1, Ordering::Relaxed);
                    }
                    remote.result.clone()
                } else {
                    match store {
                        None => run_local(),
                        // Coordinate with concurrent processes: whoever
                        // wins the job's lock executes and publishes;
                        // everyone else blocks, then reads the entry.
                        Some(s) => match s.claim_blocking(&job.key()) {
                            Ok(Claim::Hit(report)) => Ok(report),
                            Ok(Claim::Lease(lease)) => {
                                let outcome = run_local();
                                if let Ok(report) = &outcome {
                                    lease.publish(report);
                                }
                                outcome
                            }
                            Err(e) => {
                                eprintln!(
                                    "[store] claim failed for {} ({e}); executing uncoordinated",
                                    job.key()
                                );
                                run_local()
                            }
                        },
                    }
                };
                if progress == Progress::Stderr {
                    let n = done.fetch_add(1, Ordering::SeqCst) + 1;
                    let state = if outcome.is_ok() { "done" } else { "FAILED" };
                    eprintln!("[harness] {n}/{total} {state}  {}", job.key());
                }
                outcome
            });

        // Publish successes to the cache, then assemble in job order.
        for (job, outcome) in to_run.iter().zip(&executed) {
            if let Ok(report) = outcome {
                cache.insert(job.key(), Arc::clone(report));
            }
        }
        let results: Vec<Result<Arc<RunReport>, JobError>> = resolutions
            .into_iter()
            .map(|r| match r {
                Resolution::Cached(report) => Ok(report),
                Resolution::Pending(slot) => executed[slot].clone(),
            })
            .collect();

        let executed_jobs = executed_n.load(Ordering::Relaxed);
        let errors = results.iter().filter(|r| r.is_err()).count();
        if let (Some(t), Some(start)) = (trace, sweep_start) {
            t.counter(
                "ResultCache",
                vec![
                    ("hits".to_string(), TraceArg::U64(cache.hits() as u64)),
                    ("misses".to_string(), TraceArg::U64(cache.misses() as u64)),
                ],
            );
            if let Some(s) = store {
                t.counter(
                    "ResultStore",
                    vec![
                        ("hits".to_string(), TraceArg::U64(s.stats().hits())),
                        ("misses".to_string(), TraceArg::U64(s.stats().misses())),
                        ("inserts".to_string(), TraceArg::U64(s.stats().inserts())),
                        ("discards".to_string(), TraceArg::U64(s.stats().discards())),
                    ],
                );
            }
            t.complete(
                "sweep",
                "sweep",
                start,
                vec![
                    ("jobs".to_string(), TraceArg::U64(self.jobs.len() as u64)),
                    ("executed".to_string(), TraceArg::U64(executed_jobs as u64)),
                    (
                        "cache_hits".to_string(),
                        TraceArg::U64((self.jobs.len() - executed_jobs) as u64),
                    ),
                ],
            );
        }
        SweepReport {
            stats: SweepStats {
                jobs: self.jobs.len(),
                executed: executed_jobs,
                cache_hits: self.jobs.len() - executed_jobs,
                errors,
            },
            results,
            keys,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{RunParams, WorkloadSpec};
    use triangel_sim::PrefetcherChoice;
    use triangel_workloads::spec::SpecWorkload;

    fn tiny() -> RunParams {
        RunParams {
            warmup: 500,
            accesses: 500,
            sizing_window: 300,
            seed: 3,
        }
    }

    fn job(choice: PrefetcherChoice) -> JobSpec {
        JobSpec::new(WorkloadSpec::Spec(SpecWorkload::Xalan), choice, tiny())
    }

    #[test]
    fn duplicate_jobs_execute_once() {
        let sweep = Sweep::new()
            .job(job(PrefetcherChoice::Baseline))
            .job(job(PrefetcherChoice::Triangel))
            .job(job(PrefetcherChoice::Baseline))
            .job(job(PrefetcherChoice::Baseline));
        let report = sweep.run(&SweepOptions::serial());
        assert_eq!(report.stats.jobs, 4);
        assert_eq!(report.stats.executed, 2);
        assert_eq!(report.stats.cache_hits, 2);
        assert_eq!(report.stats.errors, 0);
        // Duplicates share the same underlying report.
        assert!(Arc::ptr_eq(
            report.results[0].as_ref().unwrap(),
            report.results[2].as_ref().unwrap()
        ));
    }

    #[test]
    fn shared_cache_carries_across_sweeps() {
        let cache = Arc::new(ResultCache::new());
        let opts = SweepOptions::serial().with_cache(Arc::clone(&cache));
        let first = Sweep::new().job(job(PrefetcherChoice::Baseline)).run(&opts);
        assert_eq!(first.stats.executed, 1);
        let second = Sweep::new().job(job(PrefetcherChoice::Baseline)).run(&opts);
        assert_eq!(second.stats.executed, 0);
        assert_eq!(second.stats.cache_hits, 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.lookups(), 2);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn tracing_records_job_spans_without_changing_results() {
        let trace = Arc::new(triangel_obs::TraceBuffer::new());
        let traced_opts = SweepOptions::serial().with_trace(Arc::clone(&trace));
        let sweep = Sweep::new()
            .job(job(PrefetcherChoice::Baseline))
            .job(job(PrefetcherChoice::Triangel));
        let traced = sweep.run(&traced_opts);
        let plain = sweep.run(&SweepOptions::serial());
        // Host tracing is observational: identical reports.
        for (a, b) in traced.results.iter().zip(&plain.results) {
            assert_eq!(
                format!("{:?}", a.as_ref().unwrap()),
                format!("{:?}", b.as_ref().unwrap()),
            );
        }
        // 2 job spans + 1 cache counter + 1 sweep span.
        assert_eq!(trace.len(), 4);
        triangel_obs::json::validate(&trace.to_json()).unwrap();
    }
}
