//! Campaign crash-resume semantics: killing a sweep mid-flight and
//! re-running with the same `--out-dir` must produce byte-identical
//! results to a clean run, without re-executing completed work.

use std::collections::BTreeMap;
use std::path::PathBuf;

use triangel_harness::{
    Campaign, CampaignOptions, JobOutcome, JobSpec, RunParams, Sweep, SweepOptions, WorkloadSpec,
};
use triangel_sim::PrefetcherChoice;
use triangel_workloads::spec::SpecWorkload;

const WARMUP: u64 = 2_000;
const ACCESSES: u64 = 2_000;
/// 3 segments per job at this interval.
const SEGMENT: u64 = 1_500;

fn params() -> RunParams {
    RunParams {
        warmup: WARMUP,
        accesses: ACCESSES,
        sizing_window: 1_000,
        seed: 11,
    }
}

fn jobs() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for wl in [SpecWorkload::Xalan, SpecWorkload::Mcf, SpecWorkload::Sphinx] {
        for pf in [PrefetcherChoice::Baseline, PrefetcherChoice::Triangel] {
            jobs.push(JobSpec::new(WorkloadSpec::Spec(wl), pf, params()));
        }
    }
    jobs
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("triangel-campaign-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every finished report, rendered exhaustively, keyed by job key.
fn render(report: &triangel_harness::CampaignReport) -> BTreeMap<String, String> {
    report
        .keys
        .iter()
        .zip(&report.outcomes)
        .map(|(k, o)| {
            let body = match o {
                JobOutcome::Done(r) => format!("{r:?}"),
                other => panic!("job `{k}` did not finish: {other:?}"),
            };
            (k.clone(), body)
        })
        .collect()
}

#[test]
fn interrupted_campaign_resumes_byte_identically() {
    let job_list = jobs();
    let total_segments = job_list.len() as u64 * (WARMUP + ACCESSES).div_ceil(SEGMENT);

    // Reference: the same jobs through the ordinary (non-segmented)
    // sweep scheduler — the campaign must agree with it exactly.
    let sweep = job_list
        .iter()
        .fold(Sweep::new(), |s, j| s.job(j.clone()))
        .run(&SweepOptions::serial());
    let reference: BTreeMap<String, String> = sweep
        .keys
        .iter()
        .zip(&sweep.results)
        .map(|(k, r)| (k.clone(), format!("{:?}", r.as_ref().unwrap())))
        .collect();

    // Clean, uninterrupted campaign.
    let clean_dir = scratch_dir("clean");
    let clean = Campaign::new()
        .jobs(job_list.clone())
        .run(
            &CampaignOptions::new(&clean_dir)
                .workers(1)
                .segment_accesses(SEGMENT),
        )
        .unwrap();
    assert!(clean.is_complete());
    assert_eq!(clean.stats.segments_run, total_segments);
    assert_eq!(render(&clean), reference, "campaign != sweep");

    // "Kill" a sweep mid-flight: drop the pool after 7 segments.
    let dir = scratch_dir("resume");
    let interrupted = Campaign::new()
        .jobs(job_list.clone())
        .run(
            &CampaignOptions::new(&dir)
                .workers(2)
                .segment_accesses(SEGMENT)
                .max_segments(7),
        )
        .unwrap();
    assert!(!interrupted.is_complete(), "budget must bite");
    assert!(interrupted.stats.interrupted > 0);
    assert_eq!(interrupted.stats.segments_run, 7);
    assert!(dir.join("manifest.tsv").exists());
    // Jobs the budget stopped *before their first segment* write no
    // checkpoint (there is nothing to save); everything that did make
    // progress must appear as a partial manifest row. Counted now —
    // the resumed run below rewrites the manifest.
    let partial_rows = std::fs::read_to_string(dir.join("manifest.tsv"))
        .unwrap()
        .lines()
        .filter(|l| l.split('\t').nth(1) == Some("partial"))
        .count();
    assert!(partial_rows > 0, "some job must have checkpointed mid-run");

    // Re-run with the same out-dir: completed jobs load from disk,
    // partial jobs resume from their snapshots.
    let resumed = Campaign::new()
        .jobs(job_list.clone())
        .run(
            &CampaignOptions::new(&dir)
                .workers(2)
                .segment_accesses(SEGMENT),
        )
        .unwrap();
    assert!(resumed.is_complete());
    assert_eq!(
        resumed.stats.loaded, interrupted.stats.completed,
        "every job finished before the kill must load, not re-run"
    );
    assert_eq!(
        resumed.stats.resumed, partial_rows,
        "every checkpointed job must resume from its snapshot"
    );
    assert_eq!(
        interrupted.stats.segments_run + resumed.stats.segments_run,
        total_segments,
        "no completed segment may be re-executed"
    );
    assert_eq!(
        render(&resumed),
        reference,
        "resumed sweep diverged from clean run"
    );

    // A third invocation is all cache hits: nothing executes.
    let warm = Campaign::new()
        .jobs(job_list)
        .run(
            &CampaignOptions::new(&dir)
                .workers(1)
                .segment_accesses(SEGMENT),
        )
        .unwrap();
    assert_eq!(warm.stats.segments_run, 0);
    assert_eq!(warm.stats.loaded, warm.stats.unique);
    assert_eq!(render(&warm), reference);

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_parallelism_does_not_change_results() {
    let job_list = jobs();
    let d1 = scratch_dir("j1");
    let d8 = scratch_dir("j8");
    let serial = Campaign::new()
        .jobs(job_list.clone())
        .run(
            &CampaignOptions::new(&d1)
                .workers(1)
                .segment_accesses(SEGMENT),
        )
        .unwrap();
    let parallel = Campaign::new()
        .jobs(job_list)
        .run(
            &CampaignOptions::new(&d8)
                .workers(8)
                .segment_accesses(SEGMENT),
        )
        .unwrap();
    assert_eq!(render(&serial), render(&parallel));
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d8);
}

#[test]
fn campaign_cache_slots_into_sweep_folds() {
    // The campaign's result cache satisfies an ordinary sweep without
    // executing anything — the bridge the figure folds use.
    let job_list = jobs();
    let dir = scratch_dir("cache");
    let campaign = Campaign::new()
        .jobs(job_list.clone())
        .run(
            &CampaignOptions::new(&dir)
                .workers(1)
                .segment_accesses(SEGMENT),
        )
        .unwrap();
    let sweep = job_list
        .iter()
        .fold(Sweep::new(), |s, j| s.job(j.clone()))
        .run(&SweepOptions::serial().with_cache(campaign.cache.clone()));
    assert_eq!(sweep.stats.executed, 0, "all jobs must cache-hit");
    assert_eq!(sweep.stats.cache_hits, job_list.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_bytes_round_trip() {
    let report = jobs()[0].run().unwrap();
    let bytes = triangel_harness::campaign::report_to_bytes(&report);
    let parsed = triangel_harness::campaign::report_from_bytes(&bytes).unwrap();
    assert_eq!(format!("{report:?}"), format!("{parsed:?}"));
    assert!(triangel_harness::campaign::report_from_bytes(&bytes[..bytes.len() - 2]).is_err());
}

/// The acceptance bar: snapshot/restore/continue on the *golden
/// sweeps* (the byte-pinned fixture job lists), at `--jobs 1` and
/// `--jobs 8`, interrupted mid-flight — reports must equal the plain
/// serial sweep's exactly. Together with the golden fixture tests
/// (which pin that sweep to committed bytes), this transitively pins
/// campaign output to the fixtures.
#[test]
fn golden_sweeps_survive_interrupt_and_resume_at_jobs_1_and_8() {
    for (tag, sweep, segment, workers) in [
        (
            "golden-j1",
            triangel_harness::goldens::golden_sweep(),
            2_500u64,
            1usize,
        ),
        (
            "golden-j8",
            triangel_harness::goldens::golden_sweep(),
            2_500,
            8,
        ),
        (
            "evict-j8",
            triangel_harness::goldens::evict_train_sweep(),
            20_000,
            8,
        ),
    ] {
        let job_list: Vec<JobSpec> = sweep.jobs().to_vec();
        let reference: BTreeMap<String, String> = {
            let report = job_list
                .iter()
                .fold(Sweep::new(), |s, j| s.job(j.clone()))
                .run(&SweepOptions::serial());
            report
                .keys
                .iter()
                .zip(&report.results)
                .map(|(k, r)| (k.clone(), format!("{:?}", r.as_ref().unwrap())))
                .collect()
        };
        let dir = scratch_dir(tag);
        let opts = |budget: Option<u64>| {
            let mut o = CampaignOptions::new(&dir)
                .workers(workers)
                .segment_accesses(segment);
            if let Some(b) = budget {
                o = o.max_segments(b);
            }
            o
        };
        let first = Campaign::new()
            .jobs(job_list.clone())
            .run(&opts(Some(5)))
            .unwrap();
        assert!(!first.is_complete(), "{tag}: interrupt must bite");
        let resumed = Campaign::new().jobs(job_list).run(&opts(None)).unwrap();
        assert!(resumed.is_complete(), "{tag}");
        assert_eq!(render(&resumed), reference, "{tag} diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Mid-trace interrupt → resume: a campaign over a recorded trace
/// file that is *shorter* than the run (so replay wraps) must resume
/// from a snapshot whose cursor sits mid-file, byte-identically to an
/// uninterrupted run. This pins the `FileTrace` save/restore pair
/// (logical record cursor + wrap counter) through the whole campaign
/// stack, alongside the irregular-family snapshots.
#[test]
fn mid_trace_interrupt_resumes_byte_identically() {
    use triangel_workloads::irregular::IrregularWorkload;
    use triangel_workloads::trace_file::record_trace;

    let trace_dir = scratch_dir("trace-file");
    std::fs::create_dir_all(&trace_dir).unwrap();
    let trace_path = trace_dir.join("short.trc");
    let mut src = IrregularWorkload::ZipfKv.generator(11);
    let header = record_trace(&mut src, 1_000, &trace_path).unwrap();
    assert_eq!(header.records, 1_000);

    // A 1000-record trace under a 2000+2000-access run wraps 4 times,
    // and the 1500-access segment boundaries land at replay cursor 500
    // — every checkpoint of a trace job saves a mid-file position and
    // a non-zero wrap count. Trace jobs first: with one worker they
    // run in order, so the 4-segment budget below completes the first
    // (3 segments) and checkpoints the second mid-trace.
    let mut job_list = Vec::new();
    for pf in [PrefetcherChoice::Baseline, PrefetcherChoice::Triangel] {
        job_list.push(JobSpec::new(
            WorkloadSpec::trace_file(&trace_path).unwrap(),
            pf,
            params(),
        ));
    }
    for pf in [PrefetcherChoice::Baseline, PrefetcherChoice::Triangel] {
        job_list.push(JobSpec::new(
            WorkloadSpec::Irregular(IrregularWorkload::HashJoin),
            pf,
            params(),
        ));
    }

    let sweep = job_list
        .iter()
        .fold(Sweep::new(), |s, j| s.job(j.clone()))
        .run(&SweepOptions::serial());
    let reference: BTreeMap<String, String> = sweep
        .keys
        .iter()
        .zip(&sweep.results)
        .map(|(k, r)| (k.clone(), format!("{:?}", r.as_ref().unwrap())))
        .collect();

    let dir = scratch_dir("trace-resume");
    let interrupted = Campaign::new()
        .jobs(job_list.clone())
        .run(
            &CampaignOptions::new(&dir)
                .workers(1)
                .segment_accesses(SEGMENT)
                .max_segments(4),
        )
        .unwrap();
    assert!(!interrupted.is_complete(), "budget must bite");
    let partial_trace_rows = std::fs::read_to_string(dir.join("manifest.tsv"))
        .unwrap()
        .lines()
        .filter(|l| l.split('\t').nth(1) == Some("partial"))
        .filter(|l| {
            l.split('\t')
                .nth(6)
                .is_some_and(|key| key.starts_with("trace:"))
        })
        .count();
    assert!(
        partial_trace_rows > 0,
        "a trace-file job must have checkpointed mid-trace"
    );

    let resumed = Campaign::new()
        .jobs(job_list)
        .run(
            &CampaignOptions::new(&dir)
                .workers(1)
                .segment_accesses(SEGMENT),
        )
        .unwrap();
    assert!(resumed.is_complete());
    assert_eq!(
        render(&resumed),
        reference,
        "mid-trace resume diverged from the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&trace_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The campaign ↔ store bridge, both directions: a campaign publishes
/// everything it finishes into the shared store (so sweeps and other
/// campaigns hit), and a campaign over a fresh `--out-dir` is served
/// from the store without running a single segment.
#[test]
fn campaign_bridges_the_shared_store_both_ways() {
    use std::sync::Arc;
    use triangel_harness::ResultStore;

    let store_dir = scratch_dir("bridge-store");
    let job_list = jobs();

    // Campaign A executes everything and publishes into the store.
    let store_a = Arc::new(ResultStore::open(&store_dir).unwrap());
    let dir_a = scratch_dir("bridge-a");
    let a = Campaign::new()
        .jobs(job_list.clone())
        .run(
            &CampaignOptions::new(&dir_a)
                .workers(2)
                .segment_accesses(SEGMENT)
                .with_store(Arc::clone(&store_a)),
        )
        .expect("campaign io");
    assert_eq!(a.stats.completed, a.stats.unique);
    assert_eq!(
        store_a.stats().inserts() as usize,
        job_list.len(),
        "every completed job must publish into the store"
    );

    // A plain sweep over the same directory executes nothing.
    let sweep = job_list
        .iter()
        .fold(Sweep::new(), |s, j| s.job(j.clone()))
        .run(&SweepOptions::serial().with_store(Arc::new(ResultStore::open(&store_dir).unwrap())));
    assert_eq!(
        sweep.stats.executed, 0,
        "sweep must be served from the campaign's publishes"
    );

    // Campaign B, fresh out-dir, same store: all loads, zero segments,
    // byte-identical outcomes.
    let dir_b = scratch_dir("bridge-b");
    let b = Campaign::new()
        .jobs(job_list)
        .run(
            &CampaignOptions::new(&dir_b)
                .workers(1)
                .segment_accesses(SEGMENT)
                .with_store(Arc::new(ResultStore::open(&store_dir).unwrap())),
        )
        .expect("campaign io");
    assert_eq!(
        b.stats.loaded, b.stats.unique,
        "store must serve the whole campaign"
    );
    assert_eq!(b.stats.segments_run, 0);
    assert_eq!(render(&a), render(&b));

    for dir in [&store_dir, &dir_a, &dir_b] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn heterogeneous_multicore_job_resumes_byte_identically() {
    // A three-core job with a *different* workload per core — the MCF
    // generator, the zipfian KV store, and a recorded-trace replay —
    // interrupted and resumed through the campaign runner. Exercises
    // the contended N-core timing model's snapshot path end to end
    // with per-core sources of three different kinds.
    use triangel_workloads::irregular::IrregularWorkload;
    use triangel_workloads::trace_file::record_trace;

    let trace_dir = scratch_dir("hetero-trace");
    std::fs::create_dir_all(&trace_dir).unwrap();
    let trace_path = trace_dir.join("hetero.trc");
    // Deliberately shorter than the run, so the looping end-of-trace
    // policy wraps mid-campaign.
    let mut src = IrregularWorkload::WebServe.generator(9);
    record_trace(&mut src, (WARMUP + ACCESSES) / 2, &trace_path).unwrap();

    let workload = WorkloadSpec::Multi(vec![
        WorkloadSpec::Spec(SpecWorkload::Mcf),
        WorkloadSpec::Irregular(IrregularWorkload::ZipfKv),
        WorkloadSpec::trace_file(&trace_path).unwrap(),
    ]);
    let job_list = vec![JobSpec::new(workload, PrefetcherChoice::Triangel, params()).with_cores(3)];

    // Reference: the ordinary sweep scheduler.
    let sweep = job_list
        .iter()
        .fold(Sweep::new(), |s, j| s.job(j.clone()))
        .run(&SweepOptions::serial());
    let reference: BTreeMap<String, String> = sweep
        .keys
        .iter()
        .zip(&sweep.results)
        .map(|(k, r)| (k.clone(), format!("{:?}", r.as_ref().unwrap())))
        .collect();

    // Interrupt after 1 segment, then resume with the same out-dir.
    let dir = scratch_dir("hetero");
    let interrupted = Campaign::new()
        .jobs(job_list.clone())
        .run(
            &CampaignOptions::new(&dir)
                .workers(1)
                .segment_accesses(SEGMENT)
                .max_segments(1),
        )
        .unwrap();
    assert!(!interrupted.is_complete(), "budget must bite");
    let resumed = Campaign::new()
        .jobs(job_list)
        .run(
            &CampaignOptions::new(&dir)
                .workers(1)
                .segment_accesses(SEGMENT),
        )
        .unwrap();
    assert!(resumed.is_complete());
    assert_eq!(resumed.stats.resumed, 1, "the job must resume, not restart");
    assert_eq!(
        render(&resumed),
        reference,
        "resumed heterogeneous 3-core job diverged from the straight run"
    );

    let _ = std::fs::remove_dir_all(&trace_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
