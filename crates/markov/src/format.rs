//! Markov entry formats (Sections 3.1, 4.3 and 6.5 of the paper).

/// Associativity of the 1024-entry lookup table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LutAssociativity {
    /// 64 sets x 16 ways (the paper finds this performs like fully
    /// associative, Section 3.1).
    Way16,
    /// One 1024-way set.
    Full,
}

/// How the prefetch target is stored in a Markov entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetFormat {
    /// Triage's 32-bit entry: an `offset_bits` L3-index field plus a
    /// 10-bit index into the shared lookup table. 16 entries per 64-byte
    /// line. `offset_bits` is 11 in the paper's default; 10 models the
    /// halved frame locality of Fig. 18/19's `10b-offset` variant.
    Lut {
        /// Bits of the target stored explicitly (the L3 index).
        offset_bits: u32,
        /// Lookup-table organization.
        assoc: LutAssociativity,
    },
    /// A hypothetical *perfect* lookup table (`32-bit-ideal` in Fig. 18):
    /// same 16-entry density, but target reconstruction never errs.
    Ideal32,
    /// Triangel's 42-bit entry: the 31-bit target line address stored
    /// directly (128 GB range), 12 entries per line (Section 4.3).
    Direct42,
}

impl TargetFormat {
    /// Triage's default format (Fig. 18's `32-bit-LUT-16-way`).
    pub const fn triage_default() -> Self {
        TargetFormat::Lut {
            offset_bits: 11,
            assoc: LutAssociativity::Way16,
        }
    }

    /// The fragmentation-stressed variant (`32-bit-LUT-16-way-10b-offset`).
    pub const fn triage_10b_offset() -> Self {
        TargetFormat::Lut {
            offset_bits: 10,
            assoc: LutAssociativity::Way16,
        }
    }

    /// Fully-associative LUT variant (`32-bit-LUT-1024-way`).
    pub const fn triage_full_lut() -> Self {
        TargetFormat::Lut {
            offset_bits: 11,
            assoc: LutAssociativity::Full,
        }
    }

    /// Markov entries that fit in one 64-byte cache line under this
    /// format (Section 3.2: 16 for 32-bit entries; Section 4.3: 12 for
    /// 42-bit entries).
    pub const fn entries_per_line(self) -> usize {
        match self {
            TargetFormat::Lut { .. } | TargetFormat::Ideal32 => 16,
            TargetFormat::Direct42 => 12,
        }
    }

    /// Bits per stored entry (for sizing reports).
    pub const fn entry_bits(self) -> u32 {
        match self {
            TargetFormat::Lut { .. } | TargetFormat::Ideal32 => 32,
            TargetFormat::Direct42 => 42,
        }
    }

    /// Whether this format needs a [`LookupTable`](crate::LookupTable).
    pub const fn uses_lut(self) -> bool {
        matches!(self, TargetFormat::Lut { .. })
    }

    /// The paper's name for the format (Fig. 18 legend).
    pub fn label(self) -> &'static str {
        match self {
            TargetFormat::Lut {
                offset_bits: 11,
                assoc: LutAssociativity::Way16,
            } => "32-bit-LUT-16-way",
            TargetFormat::Lut {
                offset_bits: 10,
                assoc: LutAssociativity::Way16,
            } => "32-bit-LUT-16-way-10b-offset",
            TargetFormat::Lut {
                assoc: LutAssociativity::Full,
                ..
            } => "32-bit-LUT-1024-way",
            TargetFormat::Lut { .. } => "32-bit-LUT",
            TargetFormat::Ideal32 => "32-bit-ideal",
            TargetFormat::Direct42 => "42-bit",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densities_match_paper() {
        assert_eq!(TargetFormat::triage_default().entries_per_line(), 16);
        assert_eq!(TargetFormat::Direct42.entries_per_line(), 12);
    }

    #[test]
    fn capacity_math_matches_paper() {
        // 1 MiB partition = 2048 sets x 8 ways; the paper quotes 196608
        // entries for 42-bit entries (Section 4.4.1).
        let lines = 2048 * 8;
        assert_eq!(lines * TargetFormat::Direct42.entries_per_line(), 196_608);
        assert_eq!(
            lines * TargetFormat::triage_default().entries_per_line(),
            262_144
        );
    }

    #[test]
    fn labels_match_fig18() {
        assert_eq!(TargetFormat::triage_default().label(), "32-bit-LUT-16-way");
        assert_eq!(
            TargetFormat::triage_10b_offset().label(),
            "32-bit-LUT-16-way-10b-offset"
        );
        assert_eq!(
            TargetFormat::triage_full_lut().label(),
            "32-bit-LUT-1024-way"
        );
        assert_eq!(TargetFormat::Ideal32.label(), "32-bit-ideal");
        assert_eq!(TargetFormat::Direct42.label(), "42-bit");
    }
}
