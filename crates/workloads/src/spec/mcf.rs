//! Mcf-like workload: network-simplex vehicle scheduling.
//!
//! Mcf's arc/node network is enormous: part of the access stream repeats
//! over a footprint larger than the Markov table can ever cover, and the
//! paper credits ReuseConf with "not wasting storage on patterns too
//! large to fit in the L3" (Section 6.6). We model that with one chase
//! beyond MaxSize (196 608 entries) and profitable medium chases that
//! should win the Markov capacity instead.

use super::Builder;
use crate::mix::WorkloadMix;

pub(crate) fn build(mut b: Builder) -> WorkloadMix {
    // Arc scan over the full network: reuse distance ~400k lines, beyond
    // Markov capacity -> ReuseConf should refuse to store it.
    b.temporal("mcf.arcs", 400_000, 0.95, 4, 0.01, 0.001, true, 3);
    // Tree/node chases: big but within capacity, profitable.
    b.temporal("mcf.nodes", 90_000, 0.96, 4, 0.01, 0.003, true, 3);
    b.temporal("mcf.basket", 55_000, 0.94, 4, 0.01, 0.004, true, 2);
    // Pricing scans: random-ish over a large region.
    b.random("mcf.pricing", 200_000, false, 1);
    b.finish()
}
