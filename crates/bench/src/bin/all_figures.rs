//! Regenerates every figure and table of the paper in one run.
//!
//! All experiments execute in-process through the `triangel-harness`
//! scheduler over one shared result cache, so simulations common to
//! several figures (the per-workload stride-only baselines above all)
//! run exactly once; the final summary reports the cache-hit count.
//!
//! ```text
//! all_figures [--jobs N] [--filter <regex>] [--out-dir <dir>] [--trace <path>]
//!             [--store <dir>] [--connect <socket>]
//! ```
//!
//! * `--jobs N` — worker threads (default: one per core). Reports are
//!   bit-identical for every value, `--jobs 1` included.
//! * `--filter <regex>` — run only the experiments whose registry name
//!   matches, e.g. `--filter 'fig1[0-5]'` or `--filter '^table'`.
//! * `--out-dir <dir>` — additionally emit every table as JSON and CSV.
//! * `--trace <path>` — record the harness's wall-time spans (job
//!   lifetimes, worker lanes, cache counters) as Chrome `trace_event`
//!   JSON for <https://ui.perfetto.dev>. Host-only: figure output is
//!   byte-identical with or without it.
//! * `--store <dir>` — resolve jobs against (and publish into) the
//!   shared on-disk result store. Byte-identical output, warm or cold.
//! * `--connect <socket>` — run remotable jobs on the simulation
//!   daemon (`serve` binary) at this socket instead of in-process.
//!
//! Full-scale run: `cargo run --release -p triangel-bench --bin all_figures`
//! Smoke run: `TRIANGEL_QUICK=1 cargo run --release -p triangel-bench --bin all_figures -- --filter 'fig10|table'`

use triangel_bench::figures::{self, FigureContext};
use triangel_bench::SweepParams;

fn main() {
    let cli = match figures::parse_cli(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let params = SweepParams::from_env();
    eprintln!(
        "==> all_figures: warmup {}, accesses {}, {} worker(s)",
        params.warmup,
        params.accesses,
        if cli.jobs == 0 {
            "per-core".to_string()
        } else {
            cli.jobs.to_string()
        }
    );

    let mut ctx = FigureContext::new(params, cli.jobs);
    let trace = figures::attach_trace(&mut ctx, &cli);
    if let Err(e) = figures::attach_service(&mut ctx, &cli) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let mut ran = 0usize;
    for def in figures::registry() {
        if let Some(filter) = &cli.filter {
            if !filter.is_match(def.name) {
                continue;
            }
        }
        eprintln!("==> {} ({})", def.name, def.title);
        let outputs = def.run(&mut ctx);
        for out in &outputs {
            out.print();
        }
        // Tables/text are emitted only under --out-dir; JSON artefacts
        // (the perf trajectory) are always written, defaulting to the
        // working directory.
        let dir = cli
            .out_dir
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from("."));
        if let Err(e) = figures::emit_selected(&dir, def.name, &outputs, cli.out_dir.is_some()) {
            eprintln!("failed to emit {} to {}: {e}", def.name, dir.display());
            std::process::exit(1);
        }
        ran += 1;
    }
    if ran == 0 {
        eprintln!("--filter matched no experiments");
        std::process::exit(2);
    }
    figures::write_trace(&cli, trace.as_deref());
    figures::service_summary(&ctx.opts);
    let stats = ctx.stats();
    eprintln!(
        "==> {} experiment(s); {} job(s), {} executed, {} cache hit(s), {} error(s)",
        ran, stats.jobs, stats.executed, stats.cache_hits, stats.errors
    );
}
