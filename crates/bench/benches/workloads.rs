//! Criterion benchmarks for workload generation: synthetic SPEC-like
//! mixes and the real Graph500 substrate (Kronecker + CSR + BFS).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use triangel_workloads::graph500::{generate_edges, Csr, Graph500Config, KroneckerConfig};
use triangel_workloads::spec::SpecWorkload;
use triangel_workloads::TraceSource;

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("spec_generators");
    g.throughput(Throughput::Elements(1));
    for wl in [
        SpecWorkload::Xalan,
        SpecWorkload::Mcf,
        SpecWorkload::Omnetpp,
    ] {
        g.bench_function(BenchmarkId::from_parameter(wl.label()), |b| {
            let mut gen = wl.generator(1);
            b.iter(|| black_box(gen.next_access()));
        });
    }
    g.finish();
}

fn bench_graph500(c: &mut Criterion) {
    c.bench_function("kronecker_s12_e8", |b| {
        b.iter(|| {
            generate_edges(KroneckerConfig {
                scale: 12,
                edge_factor: 8,
                seed: 1,
            })
        })
    });
    c.bench_function("csr_build_s12_e8", |b| {
        let edges = generate_edges(KroneckerConfig {
            scale: 12,
            edge_factor: 8,
            seed: 1,
        });
        b.iter(|| Csr::from_edges(1 << 12, &edges))
    });
    c.bench_function("bfs_trace_access", |b| {
        let mut t = Graph500Config::tiny().build_trace();
        b.iter(|| black_box(t.next_access()));
    });
}

criterion_group!(benches, bench_generators, bench_graph500);
criterion_main!(benches);
