//! Extension study: the Set Dueller's bias factor B (Section 4.7,
//! footnote 11).
//!
//! B discounts modelled Markov-table hits by the DRAM cost of
//! prefetches (each Markov hit is worth `12 / B` cache hits). The paper
//! uses B = 2 and notes that "more aggressive tradeoff parameters...
//! do increase performance" at the cost of traffic; this binary sweeps
//! B over {1, 2, 4} to expose that tradeoff.

use triangel_bench::SweepParams;
use triangel_core::TriangelConfig;
use triangel_sim::report::FigureTable;
use triangel_sim::{Comparison, Experiment, PrefetcherChoice};
use triangel_workloads::spec::SpecWorkload;

fn main() {
    let p = SweepParams::from_env();
    let biases = [1u32, 2, 4];
    let mut speedup = FigureTable::new(
        "Dueller bias sweep: speedup",
        "IPC vs stride-only baseline (B=2 is the paper's default)",
        biases.iter().map(|b| format!("B={b}")).collect(),
    );
    let mut traffic = FigureTable::new(
        "Dueller bias sweep: DRAM traffic",
        "line reads vs baseline",
        biases.iter().map(|b| format!("B={b}")).collect(),
    );
    for wl in SpecWorkload::ALL {
        eprintln!("[duel_bias] {} / Baseline", wl.label());
        let base = Experiment::new(wl.generator(p.seed))
            .warmup(p.warmup)
            .accesses(p.accesses)
            .run();
        let mut sp = Vec::new();
        let mut tr = Vec::new();
        for b in biases {
            eprintln!("[duel_bias] {} / B={b}", wl.label());
            let mut cfg = TriangelConfig::paper_default();
            cfg.dueller_bias = b;
            cfg.sizing_window = p.sizing_window;
            let run = Experiment::new(wl.generator(p.seed))
                .warmup(p.warmup)
                .accesses(p.accesses)
                .prefetcher(PrefetcherChoice::TriangelCustom(cfg))
                .run();
            let c = Comparison::new(&base, &run);
            sp.push(c.speedup);
            tr.push(c.dram_traffic);
        }
        speedup.push_row(wl.label(), sp);
        traffic.push_row(wl.label(), tr);
    }
    speedup.print();
    traffic.print();
}
