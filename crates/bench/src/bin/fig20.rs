//! Reproduces Fig. 20: the ablation study (Section 6.6).
//!
//! Starting from Triage Degree-4, each column enables one more Triangel
//! mechanism, in the paper's order: +Lookahead-2, +Triangel Metadata,
//! +BasePatternConf, +Second-Chance, +Metadata Reuse Buffer, +Set Duel,
//! +ReuseConf, +HighPatternConf. Both panels of the figure are printed:
//! (a) speedup, (b) normalized DRAM traffic.

use triangel_bench::SweepParams;
use triangel_core::TriangelFeatures;
use triangel_sim::report::FigureTable;
use triangel_sim::{Comparison, Experiment, PrefetcherChoice};
use triangel_workloads::spec::SpecWorkload;

fn main() {
    let p = SweepParams::from_env();
    let steps: Vec<usize> = (0..=8).collect();
    let labels: Vec<String> =
        steps.iter().map(|s| TriangelFeatures::ladder_label(*s).to_string()).collect();
    let mut speedup = FigureTable::new(
        "Fig. 20a: Ablation speedup",
        "IPC relative to stride-only baseline, features added cumulatively",
        labels.clone(),
    );
    let mut traffic = FigureTable::new(
        "Fig. 20b: Ablation DRAM traffic",
        "DRAM line reads relative to baseline",
        labels,
    );
    for wl in SpecWorkload::ALL {
        eprintln!("[fig20] {} / Baseline", wl.label());
        let base = Experiment::new(wl.generator(p.seed))
            .warmup(p.warmup)
            .accesses(p.accesses)
            .sizing_window(p.sizing_window)
            .run();
        let mut sp_row = Vec::new();
        let mut tr_row = Vec::new();
        for s in &steps {
            eprintln!("[fig20] {} / step {s}", wl.label());
            let run = Experiment::new(wl.generator(p.seed))
                .warmup(p.warmup)
                .accesses(p.accesses)
                .sizing_window(p.sizing_window)
                .prefetcher(PrefetcherChoice::TriangelLadder(*s))
                .run();
            let c = Comparison::new(&base, &run);
            sp_row.push(c.speedup);
            tr_row.push(c.dram_traffic);
        }
        speedup.push_row(wl.label(), sp_row);
        traffic.push_row(wl.label(), tr_row);
    }
    speedup.print();
    traffic.print();
}
