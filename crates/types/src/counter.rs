//! Saturating counters, the workhorse of prefetcher confidence tracking.

use std::fmt;

/// An unsigned saturating counter with an inclusive maximum.
///
/// Triangel's confidence fields (Section 4.2) are saturating counters:
/// `ReuseConf` is 4 bits, `PatternConf` is two 4-bit counters with
/// asymmetric increments/decrements, `SampleRate` is 4 bits initialized
/// to 8. This type models all of them.
///
/// # Examples
///
/// ```
/// use triangel_types::SaturatingCounter;
///
/// // A 4-bit counter initialized to 8, like ReuseConf.
/// let mut c = SaturatingCounter::with_initial(15, 8);
/// c.add(10);
/// assert_eq!(c.get(), 15); // saturated at max
/// c.sub(20);
/// assert_eq!(c.get(), 0); // saturated at zero
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SaturatingCounter {
    value: u32,
    max: u32,
}

impl SaturatingCounter {
    /// Creates a counter with the given maximum, starting at zero.
    pub const fn new(max: u32) -> Self {
        SaturatingCounter { value: 0, max }
    }

    /// Creates a counter with the given maximum and initial value.
    ///
    /// # Panics
    ///
    /// Panics if `initial > max`.
    pub fn with_initial(max: u32, initial: u32) -> Self {
        assert!(initial <= max, "initial value exceeds counter maximum");
        SaturatingCounter {
            value: initial,
            max,
        }
    }

    /// Creates an n-bit counter (maximum `2^bits - 1`) starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 32.
    pub fn with_bits(bits: u32) -> Self {
        assert!(bits > 0 && bits <= 32, "bits must be in 1..=32");
        SaturatingCounter::new(if bits == 32 {
            u32::MAX
        } else {
            (1 << bits) - 1
        })
    }

    /// Returns the current value.
    pub const fn get(&self) -> u32 {
        self.value
    }

    /// Returns the maximum value.
    pub const fn max_value(&self) -> u32 {
        self.max
    }

    /// Returns `true` if the counter is at its maximum.
    pub const fn is_saturated(&self) -> bool {
        self.value == self.max
    }

    /// Increments by 1, saturating at the maximum.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Decrements by 1, saturating at zero.
    pub fn dec(&mut self) {
        self.sub(1);
    }

    /// Adds `n`, saturating at the maximum.
    pub fn add(&mut self, n: u32) {
        self.value = self.value.saturating_add(n).min(self.max);
    }

    /// Subtracts `n`, saturating at zero.
    pub fn sub(&mut self, n: u32) {
        self.value = self.value.saturating_sub(n);
    }

    /// Sets the value directly, clamping to the maximum.
    pub fn set(&mut self, value: u32) {
        self.value = value.min(self.max);
    }
}

impl fmt::Display for SaturatingCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.value, self.max)
    }
}

impl crate::snap::Snapshot for SaturatingCounter {
    fn save(&self, w: &mut crate::snap::SnapWriter) -> Result<(), crate::snap::SnapError> {
        w.u32(self.value);
        Ok(())
    }

    fn restore(&mut self, r: &mut crate::snap::SnapReader) -> Result<(), crate::snap::SnapError> {
        let v = r.u32()?;
        crate::snap::snap_check(v <= self.max, "saturating counter above maximum")?;
        self.value = v;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_both_ends() {
        let mut c = SaturatingCounter::with_bits(4);
        assert_eq!(c.max_value(), 15);
        c.sub(5);
        assert_eq!(c.get(), 0);
        c.add(100);
        assert_eq!(c.get(), 15);
        assert!(c.is_saturated());
    }

    #[test]
    fn asymmetric_updates_model_pattern_conf() {
        // BasePatternConf: +1 on match, -2 on mismatch; saturates high only
        // if accuracy > 2/3 (Section 4.4.2). With alternating outcomes it
        // should sink toward zero.
        let mut c = SaturatingCounter::with_initial(15, 8);
        for _ in 0..8 {
            c.add(1);
            c.sub(2);
        }
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn set_clamps() {
        let mut c = SaturatingCounter::with_bits(2);
        c.set(9);
        assert_eq!(c.get(), 3);
    }

    #[test]
    #[should_panic(expected = "initial value exceeds")]
    fn with_initial_validates() {
        let _ = SaturatingCounter::with_initial(3, 4);
    }
}
