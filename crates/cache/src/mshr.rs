//! Miss-status holding registers.

use triangel_types::{Cycle, LineAddr};

/// One outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrSlot {
    /// The missing line.
    pub line: LineAddr,
    /// Cycle at which the fill completes.
    pub ready_at: Cycle,
    /// Whether the request is (still) prefetch-only. A demand merge
    /// upgrades it.
    pub prefetch_only: bool,
    /// Number of requests merged into this slot (including the first).
    pub merged: u32,
}

/// A miss-status holding register file: bounds in-flight misses per cache
/// and merges requests to the same line (Table 2: 16 MSHRs at L1, 32 at
/// L2, 36 at L3).
///
/// Storage is a small vector in allocation order: with at most a few
/// dozen slots, a linear scan beats hashing on the per-access hot path,
/// and [`Mshr::retire_until`] releases completed slots without
/// allocating.
///
/// # Examples
///
/// ```
/// use triangel_cache::Mshr;
/// use triangel_types::LineAddr;
///
/// let mut mshr = Mshr::new(2);
/// assert!(mshr.allocate(LineAddr::new(1), 100, false));
/// assert!(mshr.allocate(LineAddr::new(2), 120, true));
/// assert!(!mshr.allocate(LineAddr::new(3), 130, false)); // full
/// assert_eq!(mshr.earliest_ready(), Some(100));
/// mshr.retire_until(110);
/// assert!(mshr.allocate(LineAddr::new(3), 130, false)); // slot freed
/// ```
#[derive(Debug, Clone, Default)]
pub struct Mshr {
    capacity: usize,
    slots: Vec<MshrSlot>,
}

impl Mshr {
    /// Creates an MSHR file with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one slot");
        Mshr {
            capacity,
            slots: Vec::with_capacity(capacity),
        }
    }

    /// Returns the slot tracking `line`, if any.
    pub fn lookup(&self, line: LineAddr) -> Option<&MshrSlot> {
        self.slots.iter().find(|s| s.line == line)
    }

    /// Merges a request into an existing slot. A demand request clears
    /// `prefetch_only` (the in-flight prefetch becomes demand-critical).
    /// Returns the fill time, or `None` if no slot tracks `line`.
    pub fn merge(&mut self, line: LineAddr, is_prefetch: bool) -> Option<Cycle> {
        let slot = self.slots.iter_mut().find(|s| s.line == line)?;
        slot.merged += 1;
        if !is_prefetch {
            slot.prefetch_only = false;
        }
        Some(slot.ready_at)
    }

    /// Allocates a slot for a new miss completing at `ready_at`.
    /// Returns `false` when the file is full (the requester must stall).
    pub fn allocate(&mut self, line: LineAddr, ready_at: Cycle, is_prefetch: bool) -> bool {
        debug_assert!(self.lookup(line).is_none(), "allocate after lookup/merge");
        if self.slots.len() >= self.capacity {
            return false;
        }
        self.slots.push(MshrSlot {
            line,
            ready_at,
            prefetch_only: is_prefetch,
            merged: 1,
        });
        true
    }

    /// Releases every slot whose fill time is `<= now` without
    /// allocating — the per-access form ([`Mshr::complete_until`]
    /// additionally returns the released slots). Returns how many slots
    /// were released.
    pub fn retire_until(&mut self, now: Cycle) -> usize {
        let before = self.slots.len();
        if before == 0 {
            return 0;
        }
        self.slots.retain(|s| s.ready_at > now);
        before - self.slots.len()
    }

    /// Releases every slot whose fill time is `<= now`, returning them
    /// in allocation order.
    pub fn complete_until(&mut self, now: Cycle) -> Vec<MshrSlot> {
        let mut done = Vec::new();
        self.slots.retain(|s| {
            if s.ready_at <= now {
                done.push(*s);
                false
            } else {
                true
            }
        });
        done
    }

    /// Returns the soonest fill time among outstanding misses.
    pub fn earliest_ready(&self) -> Option<Cycle> {
        self.slots.iter().map(|s| s.ready_at).min()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no miss is outstanding.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.capacity
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for Mshr {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.slots.len());
        for s in &self.slots {
            w.u64(s.line.index());
            w.u64(s.ready_at);
            w.bool(s.prefetch_only);
            w.u32(s.merged);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let n = r.usize()?;
        triangel_types::snap::snap_check(n <= self.capacity, "MSHR occupancy above capacity")?;
        self.slots.clear();
        for _ in 0..n {
            self.slots.push(MshrSlot {
                line: LineAddr::new(r.u64()?),
                ready_at: r.u64()?,
                prefetch_only: r.bool()?,
                merged: r.u32()?,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_upgrades_prefetch() {
        let mut m = Mshr::new(4);
        m.allocate(LineAddr::new(1), 50, true);
        assert!(m.lookup(LineAddr::new(1)).unwrap().prefetch_only);
        assert_eq!(m.merge(LineAddr::new(1), false), Some(50));
        let slot = m.lookup(LineAddr::new(1)).unwrap();
        assert!(!slot.prefetch_only);
        assert_eq!(slot.merged, 2);
    }

    #[test]
    fn merge_missing_line_is_none() {
        let mut m = Mshr::new(1);
        assert_eq!(m.merge(LineAddr::new(9), false), None);
    }

    #[test]
    fn complete_until_releases_in_time_order() {
        let mut m = Mshr::new(4);
        m.allocate(LineAddr::new(1), 10, false);
        m.allocate(LineAddr::new(2), 20, false);
        m.allocate(LineAddr::new(3), 30, false);
        let done = m.complete_until(25);
        assert_eq!(done.len(), 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.earliest_ready(), Some(30));
    }

    #[test]
    fn retire_until_matches_complete_until() {
        let mut a = Mshr::new(8);
        let mut b = Mshr::new(8);
        for k in 0..6u64 {
            a.allocate(LineAddr::new(k), 10 * k, k % 2 == 0);
            b.allocate(LineAddr::new(k), 10 * k, k % 2 == 0);
        }
        assert_eq!(a.retire_until(25), b.complete_until(25).len());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.earliest_ready(), b.earliest_ready());
        assert_eq!(a.retire_until(5), 0, "nothing newly ready");
    }

    #[test]
    fn capacity_enforced() {
        let mut m = Mshr::new(2);
        assert!(m.allocate(LineAddr::new(1), 1, false));
        assert!(m.allocate(LineAddr::new(2), 2, false));
        assert!(m.is_full());
        assert!(!m.allocate(LineAddr::new(3), 3, false));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _ = Mshr::new(0);
    }
}
