//! The interval-based out-of-order timing engine.

use crate::error::SimError;
use crate::hierarchy::MemorySystem;
use crate::metrics::{CoreReport, RunReport};
use triangel_types::{Addr, Cycle, Pc};
use triangel_workloads::paging::PageMapper;
use triangel_workloads::{AccessRing, TraceSource};

/// Core-index tag position in per-core PCs: generator PC bits at or
/// above this shift are masked off so cores can never alias (a PC with
/// bit 41 set on core 1 must not collide with core 3's tag).
const PC_TAG_SHIFT: u32 = 40;
/// Core-index tag position in per-core virtual addresses.
const VADDR_TAG_SHIFT: u32 = 46;

/// Tags a generator PC with its core index, masking the generator's
/// bits to the tag boundary first.
#[inline]
fn tag_pc(core: usize, pc: u64) -> u64 {
    (pc & ((1u64 << PC_TAG_SHIFT) - 1)) | ((core as u64) << PC_TAG_SHIFT)
}

/// Tags a generator virtual address with its core index (per-core
/// address spaces, multiprogrammed mode), masking to the tag boundary.
#[inline]
fn tag_vaddr(core: usize, vaddr: u64) -> u64 {
    (vaddr & ((1u64 << VADDR_TAG_SHIFT) - 1)) | ((core as u64) << VADDR_TAG_SHIFT)
}

/// Fixed power-of-two ring of in-flight accesses, bounded by the ROB.
///
/// Every element carries at least one instruction and the engine pops
/// until the in-flight instruction count fits the ROB before pushing,
/// so occupancy never exceeds `rob_entries` elements; sizing the
/// buffer to the next power of two above that makes push/pop a store,
/// a load and a mask — no branchy `VecDeque` block management on the
/// per-access path.
#[derive(Debug)]
struct InflightRing {
    /// `(retire_time, instructions)` slots, oldest at `head`.
    buf: Box<[(Cycle, u64)]>,
    head: usize,
    len: usize,
    mask: usize,
}

impl InflightRing {
    /// A ring that can hold `capacity` in-flight accesses.
    fn new(capacity: usize) -> Self {
        let size = (capacity + 1).next_power_of_two();
        InflightRing {
            buf: vec![(0, 0); size].into_boxed_slice(),
            head: 0,
            len: 0,
            mask: size - 1,
        }
    }

    #[inline]
    fn push(&mut self, entry: (Cycle, u64)) {
        debug_assert!(self.len <= self.mask, "ROB accounting overflowed the ring");
        self.buf[(self.head + self.len) & self.mask] = entry;
        self.len += 1;
    }

    #[inline]
    fn pop(&mut self) -> Option<(Cycle, u64)> {
        if self.len == 0 {
            return None;
        }
        let entry = self.buf[self.head];
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        Some(entry)
    }
}

/// Per-core architectural timeline: out-of-order issue bounded by ROB
/// occupancy and load dependences, in-order retire.
#[derive(Debug)]
struct CoreTimeline {
    instr_count: u64,
    /// In-flight accesses, oldest first.
    inflight: InflightRing,
    inflight_instrs: u64,
    prev_ready: Cycle,
    last_retire: Cycle,
    meas_start_instr: u64,
    meas_start_cycle: Cycle,
}

impl CoreTimeline {
    fn new(rob_entries: usize) -> Self {
        CoreTimeline {
            instr_count: 0,
            inflight: InflightRing::new(rob_entries),
            inflight_instrs: 0,
            prev_ready: 0,
            last_retire: 0,
            meas_start_instr: 0,
            meas_start_cycle: 0,
        }
    }
}

/// Drives trace sources through a [`MemorySystem`].
///
/// The model: instruction *i* dispatches at `i / width`; an access
/// cannot issue until the ROB has room (instructions more than
/// `rob_entries` older must have retired) nor, if it is
/// address-dependent, before the previous access's data returned.
/// Retirement is in order. This captures memory-level parallelism,
/// ROB-fill stalls, and pointer-chase serialization — the effects that
/// differentiate the paper's prefetcher configurations — without a
/// cycle-accurate pipeline.
#[derive(Debug)]
pub struct Engine {
    system: MemorySystem,
    sources: Vec<Box<dyn TraceSource + Send>>,
    /// Per-core access batches: the trace-source virtual call is paid
    /// once per [`AccessRing::DEFAULT_CAPACITY`] accesses, not per
    /// access.
    rings: Vec<AccessRing>,
    timelines: Vec<CoreTimeline>,
    mapper: PageMapper,
    /// Worker threads for trace *generation* (ring refills). Execution
    /// of accesses through the shared memory system stays serial — that
    /// is what makes contention deterministic — but generation is
    /// per-core independent, so refilling rings in parallel is
    /// byte-identical to serial by construction. Purely an execution
    /// detail: never snapshotted, never part of a content key.
    exec_threads: usize,
    /// Scratch for the cycle-ordered stepping order (avoids a per-round
    /// allocation).
    step_order: Vec<usize>,
}

impl Engine {
    /// Creates an engine over `sources` (one per core), reporting a
    /// malformed specification as a typed error.
    ///
    /// # Errors
    ///
    /// [`SimError::NoSources`] if `sources` is empty, or
    /// [`SimError::CoreCountMismatch`] if the source count does not
    /// match the system's core count.
    pub fn try_new(
        system: MemorySystem,
        sources: Vec<Box<dyn TraceSource + Send>>,
        mapper: PageMapper,
    ) -> Result<Self, SimError> {
        if sources.is_empty() {
            return Err(SimError::NoSources);
        }
        if system.core_count() != sources.len() {
            return Err(SimError::CoreCountMismatch {
                cores: system.core_count(),
                sources: sources.len(),
            });
        }
        let n = sources.len();
        let rob = system.config().rob_entries;
        Ok(Engine {
            system,
            sources,
            rings: (0..n).map(|_| AccessRing::new()).collect(),
            timelines: (0..n).map(|_| CoreTimeline::new(rob)).collect(),
            mapper,
            exec_threads: 1,
            step_order: (0..n).collect(),
        })
    }

    /// Sets the trace-generation worker-thread count (1 = serial).
    /// Observational: results are byte-identical for every value.
    pub fn set_exec_threads(&mut self, threads: usize) {
        self.exec_threads = threads.max(1);
    }

    /// Advances one access on one core.
    fn step(&mut self, core: usize) {
        let cfg = self.system.config();
        let width = cfg.width;
        let rob = cfg.rob_entries as u64;

        // Batched pull: refill the core's ring (one virtual call per
        // batch) and consume from it. Order is exactly the source's
        // `next_access` order, so batching is behaviour-invisible.
        let acc = match self.rings[core].pop() {
            Some(a) => a,
            None => {
                self.sources[core].fill(&mut self.rings[core]);
                self.rings[core]
                    .pop()
                    .expect("fill() on an infinite source yields accesses")
            }
        };
        let k = 1 + acc.work as u64;

        let tl = &mut self.timelines[core];
        let dispatch = tl.instr_count / width;
        tl.instr_count += k;

        let mut issue = dispatch;
        while tl.inflight_instrs + k > rob {
            let (retire, n) = tl.inflight.pop().expect("rob accounting");
            tl.inflight_instrs -= n;
            issue = issue.max(retire);
        }
        if acc.dependent {
            issue = issue.max(tl.prev_ready);
        }

        // Virtual address spaces are per-core (multiprogrammed mode);
        // tag before translation so cores never alias.
        let tagged = Addr::new(tag_vaddr(core, acc.vaddr.get()));
        let paddr = self.mapper.translate(tagged);
        let pc = Pc::new(tag_pc(core, acc.pc.get()));

        let ready = self.system.demand_access(core, pc, paddr.line(), issue);
        let tl = &mut self.timelines[core];
        tl.prev_ready = ready;
        let retire = tl.last_retire.max(ready);
        tl.last_retire = retire;
        tl.inflight.push((retire, k));
        tl.inflight_instrs += k;
    }

    /// Refills every empty ring up front, in parallel when
    /// `exec_threads > 1`. Each worker owns exactly one `(source, ring)`
    /// pair, and `fill` on an empty ring is contractually equivalent to
    /// repeated `next_access`, so the result is byte-identical to the
    /// lazy serial refill in [`Engine::step`] — thread scheduling can
    /// only reorder *which generator runs first*, never what any
    /// generator produces.
    fn refill_rings_parallel(&mut self) {
        let jobs: Vec<(&mut Box<dyn TraceSource + Send>, &mut AccessRing)> = self
            .sources
            .iter_mut()
            .zip(self.rings.iter_mut())
            .filter(|(_, ring)| ring.is_empty())
            .collect();
        if jobs.len() <= 1 {
            for (source, ring) in jobs {
                source.fill(ring);
            }
            return;
        }
        std::thread::scope(|scope| {
            for (source, ring) in jobs {
                scope.spawn(move || source.fill(ring));
            }
        });
    }

    /// Runs `n` rounds, each stepping every core exactly once.
    ///
    /// In legacy mode the per-round order is fixed (core 0, 1, …). With
    /// `contention.cycle_ordered` set, the round order is sorted by the
    /// cores' retire clocks at the start of the round — the core
    /// furthest behind issues into the shared L3/DRAM first, so faster
    /// cores genuinely race ahead — with ties broken by core index,
    /// then by age (within a round, a core's earlier access was already
    /// issued in the previous round). Because the order is a pure
    /// function of persisted timeline state at a round boundary,
    /// chunking `run_accesses` calls and snapshot/resume are both
    /// behaviour-invisible.
    pub fn run_accesses(&mut self, n: u64) {
        let cycle_ordered = self.system.config().contention.cycle_ordered;
        let cores = self.sources.len();
        for _ in 0..n {
            if self.exec_threads > 1 {
                self.refill_rings_parallel();
            }
            if cycle_ordered {
                let mut order = std::mem::take(&mut self.step_order);
                order.sort_by_key(|&c| (self.timelines[c].last_retire, c));
                for &core in &order {
                    self.step(core);
                }
                self.step_order = order;
            } else {
                for core in 0..cores {
                    self.step(core);
                }
            }
        }
    }

    /// Ends warm-up: zeroes measurement counters while keeping all
    /// microarchitectural state (like the paper's checkpoint warm-up).
    pub fn start_measurement(&mut self) {
        self.system.reset_measurement();
        for tl in &mut self.timelines {
            tl.meas_start_instr = tl.instr_count;
            tl.meas_start_cycle = tl.last_retire;
        }
    }

    /// Produces the measurement report.
    pub fn report(&self, workload: String) -> RunReport {
        let cores = (0..self.sources.len())
            .map(|i| {
                let tl = &self.timelines[i];
                CoreReport {
                    workload: self.sources[i].name().to_string(),
                    pf_name: self.system.prefetcher_name(i).to_string(),
                    instructions: tl.instr_count - tl.meas_start_instr,
                    cycles: (tl.last_retire - tl.meas_start_cycle).max(1),
                    l2: self.system.l2_stats(i),
                    core: self.system.core_stats(i),
                    pf: self.system.prefetcher_stats(i),
                }
            })
            .collect();
        RunReport {
            workload,
            cores,
            l3: self.system.l3_stats(),
            dram: self.system.dram_stats(),
            markov_ways: self.system.markov_ways(),
            intervals: None,
        }
    }

    /// One interval sample of cumulative-since-measurement counters,
    /// taken at `end_access` measured accesses. Read-only: sampling
    /// never perturbs simulation state.
    pub fn interval_sample(&self, end_access: u64) -> triangel_obs::IntervalSample {
        let mut s = triangel_obs::IntervalSample {
            end_access,
            ..Default::default()
        };
        for (i, tl) in self.timelines.iter().enumerate() {
            let instructions = tl.instr_count - tl.meas_start_instr;
            let cycles = tl.last_retire.saturating_sub(tl.meas_start_cycle);
            s.instructions += instructions;
            // `cycles` is the max over cores (wall-clock of the slowest
            // core); per-core IPC must come from the per-core columns
            // below, never from `instructions / cycles`.
            s.cycles = s.cycles.max(cycles);
            s.core_instructions.push(instructions);
            s.core_cycles.push(cycles);
            let l2 = self.system.l2_stats(i);
            s.l2_demand_hits += l2.demand_hits;
            s.l2_demand_misses += l2.demand_misses;
            let core = self.system.core_stats(i);
            s.temporal_fills += core.temporal_fills;
            s.temporal_used += core.temporal_used;
            s.temporal_wasted += core.temporal_wasted;
            s.prefetches_dropped += core.prefetches_dropped;
            s.prefetches_issued += self.system.prefetcher_stats(i).prefetches_issued;
            let (occ, cap) = self.system.markov_occupancy(i);
            s.markov_occupancy += occ;
            s.markov_capacity += cap;
            s.desired_ways = s
                .desired_ways
                .max(self.system.desired_markov_ways(i) as u64);
            // All nine dueller counters are per-candidate-way sample
            // hits, so cores aggregate by element-wise sum (reading
            // only core 0 silently dropped every other core).
            if let Some(duel) = self.system.dueller_counters(i) {
                for (total, v) in s.dueller.iter_mut().zip(duel) {
                    *total += v;
                }
            }
        }
        s.markov_ways = self.system.markov_ways() as u64;
        s
    }

    /// Access to the memory system (diagnostics in tests).
    pub fn system(&self) -> &MemorySystem {
        &self.system
    }

    /// Per-core replay statistics: `Some` for cores driven by a finite
    /// looping recording (see
    /// [`TraceSource::replay_stats`](triangel_workloads::TraceSource::replay_stats)),
    /// `None` for true generators.
    pub fn replay_stats(&self) -> Vec<Option<triangel_workloads::trace::TraceReplayStats>> {
        self.sources.iter().map(|s| s.replay_stats()).collect()
    }
}

use triangel_types::snap::{snap_check, SnapError, SnapReader, SnapWriter, Snapshot};

impl Snapshot for InflightRing {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        // Only the live region, oldest first; `head` is normalized to 0
        // on restore (occupancy, not physical position, is the state).
        w.usize(self.len);
        for i in 0..self.len {
            let (retire, instrs) = self.buf[(self.head + i) & self.mask];
            w.u64(retire);
            w.u64(instrs);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let n = r.usize()?;
        snap_check(n <= self.mask, "in-flight ring above capacity")?;
        self.head = 0;
        self.len = 0;
        for _ in 0..n {
            let entry = (r.u64()?, r.u64()?);
            self.push(entry);
        }
        Ok(())
    }
}

impl Snapshot for CoreTimeline {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.u64(self.instr_count);
        self.inflight.save(w)?;
        w.u64(self.inflight_instrs);
        w.u64(self.prev_ready);
        w.u64(self.last_retire);
        w.u64(self.meas_start_instr);
        w.u64(self.meas_start_cycle);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.instr_count = r.u64()?;
        self.inflight.restore(r)?;
        self.inflight_instrs = r.u64()?;
        self.prev_ready = r.u64()?;
        self.last_retire = r.u64()?;
        self.meas_start_instr = r.u64()?;
        self.meas_start_cycle = r.u64()?;
        Ok(())
    }
}

impl Snapshot for Engine {
    /// The full dynamic state of a run: memory system (caches with
    /// line metadata and fill clocks, prefetchers, DRAM), per-core
    /// timelines and batch rings, trace-source positions and RNGs, and
    /// the page mapper's allocations.
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        self.system.save(w)?;
        w.usize(self.sources.len());
        for (source, ring) in self.sources.iter().zip(&self.rings) {
            source.save_state(w)?;
            ring.save(w)?;
        }
        for tl in &self.timelines {
            tl.save(w)?;
        }
        self.mapper.save(w)
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.system.restore(r)?;
        r.expect_len(self.sources.len(), "trace sources")?;
        for (source, ring) in self.sources.iter_mut().zip(&mut self.rings) {
            source.restore_state(r)?;
            ring.restore(r)?;
        }
        for tl in &mut self.timelines {
            tl.restore(r)?;
        }
        self.mapper.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_tagging_masks_high_generator_bits() {
        let pc = 0x1234u64;
        // Pre-fix, a PC with bit 41 set on core 1 aliased core 3's tag:
        // (pc | 1 << 41) | (1 << 40) == pc | (3 << 40).
        let high = pc | (1u64 << 41);
        assert_ne!(tag_pc(1, high), tag_pc(3, pc));
        assert_eq!(tag_pc(1, high), tag_pc(1, pc));
        assert_eq!(tag_pc(3, pc) >> PC_TAG_SHIFT, 3);
    }

    #[test]
    fn vaddr_tagging_masks_high_generator_bits() {
        let v = 0x9_0000_1000u64;
        let high = v | (1u64 << 47);
        assert_ne!(tag_vaddr(1, high), tag_vaddr(3, v));
        assert_eq!(tag_vaddr(1, high), tag_vaddr(1, v));
        assert_eq!(tag_vaddr(3, v) >> VADDR_TAG_SHIFT, 3);
    }

    #[test]
    fn tagging_is_identity_on_core_zero_below_the_boundary() {
        assert_eq!(tag_pc(0, 0xABC), 0xABC);
        assert_eq!(tag_vaddr(0, 0xABC), 0xABC);
    }
}
