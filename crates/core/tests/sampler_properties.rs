//! Property-based tests on Triangel's sampling structures.

use proptest::prelude::*;
use triangel_core::{
    HistorySampler, MetadataReuseBuffer, ScsOutcome, SecondChanceSampler, SetDueller,
};
use triangel_types::LineAddr;

proptest! {
    /// The History Sampler never reports a pair it was not told about:
    /// every verdict's target must have been inserted (or refreshed) for
    /// that exact (address, train-idx) key earlier in the run.
    #[test]
    fn sampler_verdicts_are_grounded(
        ops in prop::collection::vec((0u64..64, 0u16..4, 0u64..1000), 1..300),
    ) {
        let mut s = HistorySampler::new(64, 1);
        // Ground truth of the most recent (addr, idx) -> target mapping
        // that *may* still be stored (evictions only remove entries).
        let mut truth: std::collections::HashMap<(u64, u16), Vec<u64>> =
            std::collections::HashMap::new();
        let mut ts = 0u32;
        for (addr, idx, target) in ops {
            ts += 1;
            if let Some(v) = s.lookup(LineAddr::new(addr), idx, ts, LineAddr::new(target)) {
                let known = truth.get(&(addr, idx));
                prop_assert!(
                    known.is_some_and(|k| k.contains(&v.target.index())),
                    "sampler invented target {:?} for ({addr},{idx})", v.target
                );
                // The lookup refreshed the stored target.
                truth.entry((addr, idx)).or_default().push(target);
            }
            s.insert(LineAddr::new(addr), idx, LineAddr::new(target), ts);
            truth.entry((addr, idx)).or_default().push(target);
        }
    }

    /// Sampler occupancy is bounded by capacity.
    #[test]
    fn sampler_occupancy_bounded(
        inserts in prop::collection::vec((0u64..10_000, 0u16..512), 1..400),
    ) {
        let mut s = HistorySampler::new(128, 2);
        for (i, (addr, idx)) in inserts.iter().enumerate() {
            s.insert(LineAddr::new(*addr), *idx, LineAddr::new(1), i as u32);
            prop_assert!(s.occupancy() <= s.capacity());
        }
    }

    /// Every SCS insertion is resolved at most once, and the outcome's
    /// window check matches the fill arithmetic.
    #[test]
    fn scs_single_resolution(
        parked in 0u64..1000,
        insert_at in 0u64..10_000,
        check_delta in 0u64..2000,
    ) {
        let mut s = SecondChanceSampler::new(8, 512);
        s.insert(LineAddr::new(parked), 3, insert_at);
        let at = insert_at + check_delta;
        match s.check(LineAddr::new(parked), 3, at) {
            Some(ScsOutcome::WithinWindow) => prop_assert!(check_delta <= 512),
            Some(ScsOutcome::OutsideWindow) => prop_assert!(check_delta > 512),
            None => prop_assert!(false, "entry lost without eviction"),
        }
        // A second check must find nothing.
        prop_assert_eq!(s.check(LineAddr::new(parked), 3, at), None);
    }

    /// MRB: a lookup hit always returns the most recently inserted
    /// contents for that key.
    #[test]
    fn mrb_returns_latest(ops in prop::collection::vec((0u64..64, 0u64..1000, any::<bool>()), 1..300)) {
        let mut m = MetadataReuseBuffer::new(32);
        let mut truth: std::collections::HashMap<u64, (u64, bool)> =
            std::collections::HashMap::new();
        for (key, target, conf) in ops {
            m.insert(LineAddr::new(key), LineAddr::new(target), conf);
            truth.insert(key, (target, conf));
            if let Some((t, c)) = m.peek(LineAddr::new(key)) {
                let (et, ec) = truth[&key];
                prop_assert_eq!(t, LineAddr::new(et));
                prop_assert_eq!(c, ec);
            }
        }
    }

    /// The Set Dueller's choice is always within 0..=max ways.
    #[test]
    fn dueller_choice_in_range(
        accesses in prop::collection::vec((0u64..100_000, any::<bool>()), 1..2000),
        max_ways in 1usize..8,
    ) {
        let mut d = SetDueller::new(64, max_ways, 12, 2, 100, 3);
        for (line, engaged) in accesses {
            d.on_access(LineAddr::new(line), engaged);
            prop_assert!(d.desired_ways() <= max_ways);
        }
    }
}
