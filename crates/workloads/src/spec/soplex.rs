//! Soplex (3500 ref.mps)-like workload: sparse linear programming.
//!
//! Simplex iterations are dominated by strided sweeps over the sparse
//! matrix arrays, with a mediocre-quality temporal component from basis
//! updates. The paper groups Soplex with Astar as a "poor-quality
//! stream" Triangel prefetches less from (Section 6.1).

use super::Builder;
use crate::mix::WorkloadMix;

pub(crate) fn build(mut b: Builder) -> WorkloadMix {
    // Column/row sweeps: strided, the bulk of the bandwidth.
    b.strided("soplex.cols", 1, 70_000, 3);
    b.strided("soplex.rows", 2, 40_000, 2);
    // Basis-update chases: temporal but only moderately repeatable.
    b.temporal("soplex.basis", 65_000, 0.84, 6, 0.03, 0.015, true, 3);
    // Pricing candidate picks: random.
    b.random("soplex.pricing", 50_000, false, 1);
    b.finish()
}
