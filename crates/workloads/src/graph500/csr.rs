//! Compressed sparse row graph representation.

/// An undirected graph in CSR form: `offsets[v]..offsets[v+1]` indexes
/// `neighbors` for vertex `v`. Both directions of each generated edge are
/// stored, self-loops are kept (they are rare and harmless for BFS).
#[derive(Debug, Clone)]
pub struct Csr {
    offsets: Vec<u64>,
    neighbors: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from a directed edge list, symmetrizing it.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n_vertices`.
    ///
    /// # Examples
    ///
    /// ```
    /// use triangel_workloads::graph500::Csr;
    ///
    /// let g = Csr::from_edges(4, &[(0, 1), (1, 2)]);
    /// assert_eq!(g.neighbors(1), &[0, 2]);
    /// assert_eq!(g.degree(3), 0);
    /// ```
    pub fn from_edges(n_vertices: usize, edges: &[(u32, u32)]) -> Self {
        // Counting sort by source over the symmetrized list.
        let mut degree = vec![0u64; n_vertices];
        for (u, v) in edges {
            assert!((*u as usize) < n_vertices && (*v as usize) < n_vertices);
            degree[*u as usize] += 1;
            degree[*v as usize] += 1;
        }
        let mut offsets = vec![0u64; n_vertices + 1];
        for v in 0..n_vertices {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0u32; offsets[n_vertices] as usize];
        for (u, v) in edges {
            neighbors[cursor[*u as usize] as usize] = *v;
            cursor[*u as usize] += 1;
            neighbors[cursor[*v as usize] as usize] = *u;
            cursor[*v as usize] += 1;
        }
        // Sort each adjacency list for deterministic traversal order.
        for v in 0..n_vertices {
            let range = offsets[v] as usize..offsets[v + 1] as usize;
            neighbors[range].sort_unstable();
        }
        Csr { offsets, neighbors }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored (directed) adjacency entries.
    pub fn n_entries(&self) -> usize {
        self.neighbors.len()
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// The adjacency list of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Start index of `v`'s adjacency list within the neighbor array
    /// (used to compute traced edge-array addresses).
    pub fn edge_start(&self, v: u32) -> u64 {
        self.offsets[v as usize]
    }

    /// Approximate memory footprint in bytes (offsets + neighbors), the
    /// number the paper quotes as "7 MiB" / "700 MiB" inputs.
    pub fn footprint_bytes(&self) -> u64 {
        (self.offsets.len() * 8 + self.neighbors.len() * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetrization() {
        let g = Csr::from_edges(3, &[(0, 1)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.n_entries(), 2);
    }

    #[test]
    fn offsets_partition_neighbors() {
        let g = Csr::from_edges(5, &[(0, 1), (0, 2), (3, 4), (1, 2)]);
        let total: usize = (0..5).map(|v| g.degree(v as u32)).sum();
        assert_eq!(total, g.n_entries());
        assert_eq!(g.n_entries(), 8);
    }

    #[test]
    fn adjacency_sorted() {
        let g = Csr::from_edges(4, &[(2, 1), (2, 0), (2, 3)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
    }

    #[test]
    fn footprint_scales() {
        let g = Csr::from_edges(16, &[(0, 1); 8]);
        assert_eq!(g.footprint_bytes(), (17 * 8 + 16 * 4) as u64);
    }

    #[test]
    #[should_panic]
    fn out_of_range_endpoint() {
        let _ = Csr::from_edges(2, &[(0, 5)]);
    }
}
