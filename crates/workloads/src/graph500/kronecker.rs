//! Kronecker (R-MAT) edge generation per the Graph500 specification.

use triangel_types::rng::SplitMix64;

/// Kronecker generator parameters. The initiator probabilities are the
/// Graph500 reference values A=0.57, B=0.19, C=0.19 (D implicit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KroneckerConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex; the generator emits `edge_factor << scale`
    /// edges.
    pub edge_factor: u32,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

const A: f64 = 0.57;
const B: f64 = 0.19;
const C: f64 = 0.19;

/// Generates the (directed) edge list of a Kronecker graph.
///
/// Vertex labels are scrambled with a bijective hash, as the Graph500
/// spec requires, so that high-degree vertices are not clustered at low
/// indices.
///
/// # Panics
///
/// Panics if `scale` is 0 or above 30.
///
/// # Examples
///
/// ```
/// use triangel_workloads::graph500::{generate_edges, KroneckerConfig};
///
/// let edges = generate_edges(KroneckerConfig { scale: 6, edge_factor: 4, seed: 1 });
/// assert_eq!(edges.len(), 4 << 6);
/// assert!(edges.iter().all(|(u, v)| *u < 64 && *v < 64));
/// ```
pub fn generate_edges(cfg: KroneckerConfig) -> Vec<(u32, u32)> {
    assert!(cfg.scale > 0 && cfg.scale <= 30, "scale must be in 1..=30");
    let n_edges = (cfg.edge_factor as usize) << cfg.scale;
    let mut rng = SplitMix64::new(cfg.seed);
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        let mut u = 0u32;
        let mut v = 0u32;
        for _ in 0..cfg.scale {
            u <<= 1;
            v <<= 1;
            let r = rng.next_f64();
            if r < A {
                // top-left quadrant: no bits set
            } else if r < A + B {
                v |= 1;
            } else if r < A + B + C {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((scramble(u, cfg.scale), scramble(v, cfg.scale)));
    }
    edges
}

/// Bijectively scrambles a vertex label within `0..2^scale`.
///
/// Every step is an invertible map on the `scale`-bit domain:
/// multiplication by an odd constant (bijective mod `2^scale`) and a
/// right xor-shift (unit upper-triangular over GF(2)).
fn scramble(v: u32, scale: u32) -> u32 {
    let mask = (1u32 << scale) - 1;
    let mut x = v.wrapping_mul(0x9E37_79B1) & mask;
    x ^= x >> (scale / 2).max(1);
    x.wrapping_mul(0x85EB_CA77) & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_and_range() {
        let cfg = KroneckerConfig {
            scale: 10,
            edge_factor: 8,
            seed: 7,
        };
        let edges = generate_edges(cfg);
        assert_eq!(edges.len(), 8 << 10);
        assert!(edges.iter().all(|(u, v)| *u < 1024 && *v < 1024));
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = KroneckerConfig {
            scale: 8,
            edge_factor: 4,
            seed: 3,
        };
        assert_eq!(generate_edges(cfg), generate_edges(cfg));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Kronecker graphs are scale-free-ish: max degree far above mean.
        let cfg = KroneckerConfig {
            scale: 12,
            edge_factor: 8,
            seed: 11,
        };
        let edges = generate_edges(cfg);
        let mut deg = vec![0u32; 1 << 12];
        for (u, _) in &edges {
            deg[*u as usize] += 1;
        }
        let mean = edges.len() as f64 / deg.len() as f64;
        let max = *deg.iter().max().unwrap() as f64;
        assert!(max > 8.0 * mean, "max degree {max} vs mean {mean}");
    }

    #[test]
    fn scramble_is_bijective() {
        let scale = 10;
        let mut seen = vec![false; 1 << scale];
        for v in 0..(1u32 << scale) {
            let s = scramble(v, scale) as usize;
            assert!(!seen[s], "collision at {v}");
            seen[s] = true;
        }
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn zero_scale_rejected() {
        let _ = generate_edges(KroneckerConfig {
            scale: 0,
            edge_factor: 1,
            seed: 0,
        });
    }
}
