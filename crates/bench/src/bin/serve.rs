//! The simulation daemon: harness-as-a-service over a Unix socket.
//!
//! Runs a long-lived [`triangel_harness::Server`] that accepts sweep
//! batches from any number of clients (figure binaries started with
//! `--connect`, or other tools speaking the wire protocol), schedules
//! them on the shared work-stealing pool, and streams back per-segment
//! progress plus per-job reports. With `--store`, batches resolve
//! against the on-disk result store first and publish what they
//! execute, so repeated or overlapping sweeps each pay only for the
//! jobs nobody has run yet.
//!
//! Served results are byte-identical to in-process execution — the
//! handshake pins both the wire protocol and the simulator snapshot
//! version, so a client never folds incomparable reports.
//!
//! ```text
//! serve [--socket PATH] [--store DIR] [--jobs N] [--segment N] [--quiet]
//! serve --shutdown [--socket PATH]
//! ```
//!
//! * `--socket PATH` — the Unix socket to listen on (default:
//!   `STORE/serve.sock` when `--store` is given, `serve.sock`
//!   otherwise). A stale socket left by a dead daemon is replaced; a
//!   live daemon on the path is an `AddrInUse` error.
//! * `--store DIR` — share the content-addressed result store at
//!   `DIR` (created if absent) across batches, clients, and processes.
//! * `--jobs N` — worker threads per batch (0 = one per core).
//! * `--segment N` — accesses per core between streamed progress
//!   events.
//! * `--quiet` — suppress per-connection/batch logging.
//! * `--shutdown` — connect as a client and ask the daemon at
//!   `--socket` to exit, instead of serving.
//!
//! Exit status: 0 on clean shutdown, 1 on serve failures, 2 on usage
//! errors.

use std::path::PathBuf;
use std::sync::Arc;

use triangel_harness::{Client, ResultStore, Server, ServerOptions};

#[derive(Debug)]
struct Cli {
    socket: Option<PathBuf>,
    store: Option<PathBuf>,
    jobs: usize,
    segment: u64,
    quiet: bool,
    shutdown: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            socket: None,
            store: None,
            jobs: 0,
            segment: 250_000,
            quiet: false,
            shutdown: false,
        }
    }
}

fn parse_cli(args: impl Iterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--socket" => cli.socket = Some(PathBuf::from(value("--socket")?)),
            "--store" => cli.store = Some(PathBuf::from(value("--store")?)),
            "--jobs" => {
                let v = value("--jobs")?;
                cli.jobs = v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?;
            }
            "--segment" => {
                let v = value("--segment")?;
                cli.segment = v
                    .parse()
                    .map_err(|_| format!("bad --segment value `{v}`"))?;
                if cli.segment == 0 {
                    return Err("--segment must be positive".into());
                }
            }
            "--quiet" => cli.quiet = true,
            "--shutdown" => cli.shutdown = true,
            other => {
                return Err(format!(
                    "unknown argument `{other}` (expected --socket PATH, --store DIR, \
                     --jobs N, --segment N, --quiet, --shutdown)"
                ))
            }
        }
    }
    Ok(cli)
}

/// The socket path: explicit `--socket`, else alongside the store,
/// else `serve.sock` in the working directory.
fn socket_path(cli: &Cli) -> PathBuf {
    if let Some(path) = &cli.socket {
        return path.clone();
    }
    match &cli.store {
        Some(dir) => dir.join("serve.sock"),
        None => PathBuf::from("serve.sock"),
    }
}

fn main() {
    let cli = match parse_cli(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let socket = socket_path(&cli);

    if cli.shutdown {
        let client = Client::connect(&socket).unwrap_or_else(|e| {
            eprintln!("cannot connect to daemon at {}: {e}", socket.display());
            std::process::exit(1);
        });
        if let Err(e) = client.shutdown() {
            eprintln!("shutdown request failed: {e}");
            std::process::exit(1);
        }
        eprintln!("[serve] daemon at {} shut down", socket.display());
        return;
    }

    let store = cli.store.as_ref().map(|dir| {
        let store = ResultStore::open(dir).unwrap_or_else(|e| {
            eprintln!("cannot open result store at {}: {e}", dir.display());
            std::process::exit(2);
        });
        Arc::new(store)
    });
    let opts = ServerOptions {
        workers: cli.jobs,
        segment_accesses: cli.segment,
        store: store.clone(),
        verbose: !cli.quiet,
    };
    let server = Server::bind(&socket, opts).unwrap_or_else(|e| {
        eprintln!("cannot bind daemon socket {}: {e}", socket.display());
        std::process::exit(1);
    });
    eprintln!(
        "[serve] listening on {}{}",
        server.path().display(),
        match &cli.store {
            Some(dir) => format!(" (store: {})", dir.display()),
            None => String::new(),
        }
    );
    let result = server.serve();
    // Clean up the socket so the next daemon binds fresh; the store's
    // final counters tell the operator what this daemon's lifetime
    // was worth.
    let _ = std::fs::remove_file(&socket);
    if let Some(store) = &store {
        eprintln!("[store] {}", store.stats().render());
    }
    if let Err(e) = result {
        eprintln!("[serve] daemon failed: {e}");
        std::process::exit(1);
    }
    eprintln!("[serve] exiting");
}
