//! Astar-like workload: grid path finding.
//!
//! Each search explores a different part of the map, so the miss
//! sequences drift quickly and repeat poorly: a low-quality stream the
//! paper shows Triangel largely refusing to prefetch (lower coverage on
//! Astar, Fig. 13, while Triage wastes bandwidth on it). A too-large
//! region component also exercises ReuseConf (Section 6.6 notes Astar
//! and MCF are the workloads big enough to trigger it).

use super::Builder;
use crate::mix::WorkloadMix;

pub(crate) fn build(mut b: Builder) -> WorkloadMix {
    // Open-list / region walk: drifts heavily between passes.
    b.temporal("astar.openlist", 80_000, 0.86, 8, 0.04, 0.035, true, 4);
    // Whole-map touches: beyond Markov capacity and drifting.
    b.temporal("astar.map", 300_000, 0.85, 8, 0.05, 0.020, true, 2);
    // Neighbour lookups: effectively random.
    b.random("astar.neigh", 100_000, true, 2);
    // Cost arrays: strided.
    b.strided("astar.cost", 1, 10_000, 1);
    b.finish()
}
