//! The per-cache-line simulation metadata word.
//!
//! PR 2 moved the facts the simulator used to keep in side tables
//! (`HashMap<LineAddr, Cycle>` fill times, a `HashSet<LineAddr>` of
//! temporal-prefetched residents) into the cache lines themselves: every
//! line carries a small metadata word — who filled it, when the fill
//! completes, and whether a demand has touched it — that rides along
//! through fill, hit and eviction. The word is the authoritative record:
//! it is born at fill, surfaced on every lookup, and delivered to
//! whoever is watching exactly when the line dies, so used/wasted
//! prefetch attribution needs no shadow bookkeeping.

use crate::Cycle;

/// Who installed a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillSource {
    /// A demand miss brought the line in.
    #[default]
    Demand,
    /// The L1D stride prefetcher (part of the paper's baseline).
    Stride,
    /// The temporal prefetcher under evaluation (Triage / Triangel).
    Temporal,
}

impl FillSource {
    /// Whether the line was installed by any prefetcher.
    pub fn is_prefetch(self) -> bool {
        !matches!(self, FillSource::Demand)
    }
}

/// The metadata word one cache line carries.
///
/// Small by design — hardware would spend a handful of bits per line on
/// this (2 source bits, a used bit, and a bounded fill timestamp held in
/// the MSHR until completion); the simulator widens the timestamp to a
/// full [`Cycle`] so late-prefetch timing is exact over arbitrarily long
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineMeta {
    /// Who filled the line.
    pub source: FillSource,
    /// Cycle at which the fill's data actually arrives. A demand hit
    /// before this cycle is a *late prefetch* and waits for it.
    pub ready_at: Cycle,
    /// Whether any demand access has touched the line since fill.
    pub used: bool,
    /// Ordinal of the fill that installed the line, stamped from the
    /// owning cache's monotonic fill clock (1 is the cache's first
    /// fill; 0 means "never stamped", i.e. a default word). Unlike
    /// `ready_at`, fill ordinals are totally ordered within one cache:
    /// a line's `fill_seq` is always strictly less than the ordinal of
    /// the fill that later evicts it, which is what eviction-time
    /// training and the eviction-notice invariants key on (`ready_at`
    /// is *not* monotonic across fills — a delayed prefetch can
    /// complete after a younger demand fill).
    pub fill_seq: u64,
}

impl FillSource {
    /// The snapshot byte for this source (see [`crate::snap`]).
    pub fn snap_tag(self) -> u8 {
        match self {
            FillSource::Demand => 0,
            FillSource::Stride => 1,
            FillSource::Temporal => 2,
        }
    }

    /// Decodes a snapshot byte written by [`FillSource::snap_tag`].
    ///
    /// # Errors
    ///
    /// [`crate::snap::SnapError::Corrupt`] on an unknown byte.
    pub fn from_snap_tag(b: u8) -> Result<Self, crate::snap::SnapError> {
        match b {
            0 => Ok(FillSource::Demand),
            1 => Ok(FillSource::Stride),
            2 => Ok(FillSource::Temporal),
            other => Err(crate::snap::SnapError::corrupt(format!(
                "fill-source byte {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_prefetch_classification() {
        assert!(!FillSource::Demand.is_prefetch());
        assert!(FillSource::Stride.is_prefetch());
        assert!(FillSource::Temporal.is_prefetch());
        assert_eq!(FillSource::default(), FillSource::Demand);
    }

    #[test]
    fn meta_defaults_are_inert() {
        let m = LineMeta::default();
        assert_eq!(m.ready_at, 0);
        assert!(!m.used);
        assert_eq!(m.source, FillSource::Demand);
        assert_eq!(m.fill_seq, 0, "an unstamped word has no fill ordinal");
    }
}
