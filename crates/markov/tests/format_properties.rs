//! Property-based tests on Markov metadata formats and the lookup table.

use proptest::prelude::*;
use triangel_cache::replacement::PolicyKind;
use triangel_markov::{
    LookupTable, LutAssociativity, MarkovTableConfig, MarkovTableImpl, TargetFormat,
};
use triangel_types::{LineAddr, Pc};

fn table(format: TargetFormat) -> MarkovTableImpl {
    let mut t = MarkovTableImpl::new(MarkovTableConfig {
        sets: 128,
        max_ways: 4,
        format,
        tag_bits: 10,
        replacement: PolicyKind::Lru,
    });
    t.set_ways(4);
    t
}

proptest! {
    /// A freshly trained pair is immediately retrievable under every
    /// format, and the reconstructed target round-trips while its LUT
    /// slot is live (addresses bounded to 31 bits for Direct42's range).
    #[test]
    fn fresh_pair_roundtrips(
        prev in 0u64..(1 << 31),
        next in 0u64..(1 << 31),
        format_idx in 0usize..4,
    ) {
        let format = [
            TargetFormat::Direct42,
            TargetFormat::Ideal32,
            TargetFormat::triage_default(),
            TargetFormat::triage_10b_offset(),
        ][format_idx];
        let mut t = table(format);
        t.train(LineAddr::new(prev), LineAddr::new(next), Pc::new(4));
        let hit = t.lookup(LineAddr::new(prev)).expect("fresh entry");
        prop_assert_eq!(hit.target, LineAddr::new(next));
    }

    /// The LUT's index_for is stable (same upper -> same slot) until an
    /// eviction of that slot, and find() agrees with index_for.
    #[test]
    fn lut_index_stability(uppers in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut lut = LookupTable::new(LutAssociativity::Way16);
        for u in &uppers {
            let idx = lut.index_for(*u);
            prop_assert_eq!(lut.upper_at(idx), Some(*u));
            prop_assert_eq!(lut.find(*u), Some(idx));
        }
    }

    /// Occupancy of the LUT never exceeds 1024 and, under Way16, never
    /// exceeds 16 per congruence class.
    #[test]
    fn lut_capacity(uppers in prop::collection::vec(0u64..100_000, 1..500)) {
        let mut lut = LookupTable::new(LutAssociativity::Way16);
        for u in uppers {
            let _ = lut.index_for(u);
        }
        prop_assert!(lut.occupancy() <= 1024);
    }

    /// Training the same pair twice sets the confidence bit; training a
    /// different target first clears confidence, then replaces.
    #[test]
    fn confidence_protocol_invariant(
        x in 0u64..(1 << 31),
        y in 0u64..(1 << 31),
        z in 0u64..(1 << 31),
    ) {
        prop_assume!(y != z);
        let mut t = table(TargetFormat::Direct42);
        let (x, y, z) = (LineAddr::new(x), LineAddr::new(y), LineAddr::new(z));
        t.train(x, y, Pc::new(4));
        t.train(x, y, Pc::new(4));
        prop_assert!(t.lookup(x).unwrap().confidence);
        t.train(x, z, Pc::new(4));
        let h = t.lookup(x).unwrap();
        prop_assert_eq!(h.target, y, "confident target survives one conflict");
        prop_assert!(!h.confidence);
        t.train(x, z, Pc::new(4));
        prop_assert_eq!(t.lookup(x).unwrap().target, z);
    }

    /// Direct42 stores 31 bits: targets at or beyond the 2^31 range
    /// edge reconstruct to `target mod 2^31`, and two targets that
    /// differ only above bit 30 are indistinguishable — retraining
    /// with the aliased twin counts as "same target" and sets the
    /// confidence bit instead of displacing the entry.
    #[test]
    fn direct42_truncates_at_the_31_bit_range_edge(
        prev in 0u64..(1 << 31),
        low in 0u64..(1 << 31),
        high_bits in 1u64..(1 << 12),
    ) {
        let mut t = table(TargetFormat::Direct42);
        let wide = LineAddr::new(low | (high_bits << 31));
        t.train(LineAddr::new(prev), wide, Pc::new(4));
        let hit = t.lookup(LineAddr::new(prev)).expect("fresh entry");
        prop_assert_eq!(hit.target, LineAddr::new(low), "31-bit truncation");
        // The aliased twin is the same stored target: confidence rises.
        t.train(LineAddr::new(prev), LineAddr::new(low), Pc::new(4));
        prop_assert!(t.lookup(LineAddr::new(prev)).unwrap().confidence);
    }

    /// Ideal32 is the hypothetical error-free format: it reconstructs
    /// exactly even beyond Direct42's 31-bit range.
    #[test]
    fn ideal32_reconstructs_exactly_beyond_the_direct_range(
        prev in 0u64..(1 << 31),
        next in (1u64 << 31)..(1 << 40),
    ) {
        let mut t = table(TargetFormat::Ideal32);
        t.train(LineAddr::new(prev), LineAddr::new(next), Pc::new(4));
        prop_assert_eq!(
            t.lookup(LineAddr::new(prev)).expect("fresh entry").target,
            LineAddr::new(next)
        );
    }

    /// LUT formats split the target at `offset_bits` (10 or 11): the
    /// offset field round-trips verbatim — including the all-ones
    /// boundary value — and targets one apart across a frame boundary
    /// land in different LUT frames yet still reconstruct while their
    /// slots are live.
    #[test]
    fn lut_offset_field_roundtrips_at_frame_boundaries(
        prev in 0u64..(1 << 31),
        upper in 1u64..10_000,
        ten_bit in 0usize..2,
    ) {
        let (format, offset_bits) = [
            (TargetFormat::triage_default(), 11u32),
            (TargetFormat::triage_10b_offset(), 10u32),
        ][ten_bit];
        let mut t = table(format);
        // The last line of frame `upper`: offset is all ones.
        let edge = LineAddr::new((upper << offset_bits) | ((1 << offset_bits) - 1));
        // Its successor: first line of the next frame, offset zero.
        let next_frame = LineAddr::new((upper + 1) << offset_bits);
        prop_assert_eq!(edge.index() + 1, next_frame.index());
        t.train(LineAddr::new(prev), edge, Pc::new(4));
        t.train(LineAddr::new(prev ^ 1), next_frame, Pc::new(4));
        prop_assert_eq!(
            t.lookup(LineAddr::new(prev)).expect("edge entry").target,
            edge,
            "all-ones offset survives the split encoding"
        );
        prop_assert_eq!(
            t.lookup(LineAddr::new(prev ^ 1)).expect("next entry").target,
            next_frame,
            "zero offset in the adjacent frame survives too"
        );
    }

    /// A LUT collision (the frame slot re-used by enough newer frames)
    /// redirects the *upper* bits but always preserves the stored
    /// offset field — Fig. 19's wrong-region inaccuracy, pinned as a
    /// property across both offset widths.
    #[test]
    fn lut_collisions_redirect_upper_but_preserve_offset(
        // Below 2^30 so the alias trainer lines (2^30 + k) never
        // collide with `prev`'s own entry.
        prev in 0u64..(1 << 30),
        upper in 1u64..64,
        offset in 0u64..(1 << 10),
        ten_bit in 0usize..2,
    ) {
        let (format, offset_bits) = [
            (TargetFormat::triage_default(), 11u32),
            (TargetFormat::triage_10b_offset(), 10u32),
        ][ten_bit];
        let mut t = table(format);
        let target = LineAddr::new((upper << offset_bits) | offset);
        t.train(LineAddr::new(prev), target, Pc::new(4));
        // 16 newer frames in the same Way16 congruence class (64 sets)
        // evict `upper`'s slot.
        for k in 1..=16u64 {
            let alias_upper = upper + 64 * k;
            t.train(
                LineAddr::new((1 << 30) + k),
                LineAddr::new((alias_upper << offset_bits) | 9),
                Pc::new(4),
            );
        }
        let got = t.lookup(LineAddr::new(prev)).expect("entry still present");
        prop_assert_ne!(got.target, target, "stale slot reconstructs wrongly");
        prop_assert_eq!(
            got.target.index() & ((1 << offset_bits) - 1),
            offset,
            "offset bits are stored in the entry, not the LUT"
        );
    }

    /// Resizes never increase occupancy and never lose the ability to
    /// look up *recently retrained* pairs after re-activation.
    #[test]
    fn resize_roundtrip(
        pairs in prop::collection::vec((0u64..(1 << 20), 0u64..(1 << 20)), 1..100),
        shrink_to in 0usize..4,
    ) {
        let mut t = table(TargetFormat::Direct42);
        for (a, b) in &pairs {
            t.train(LineAddr::new(*a), LineAddr::new(*b), Pc::new(4));
        }
        let occ_before = t.occupancy();
        t.set_ways(shrink_to);
        prop_assert!(t.occupancy() <= occ_before);
        t.set_ways(4);
        // Retrain one pair; it must become visible again.
        let (a, b) = pairs[0];
        t.train(LineAddr::new(a), LineAddr::new(b), Pc::new(4));
        prop_assert!(t.lookup(LineAddr::new(a)).is_some());
    }
}
