//! Property-based tests on replacement policies and the cache model.

use proptest::prelude::*;
use triangel_cache::replacement::{all_ways, AccessMeta, PolicyKind, ReplacementPolicy};
use triangel_cache::{Cache, CacheConfig, PartitionedWays};
use triangel_types::{LineAddr, Pc};

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Lru),
        Just(PolicyKind::Fifo),
        Just(PolicyKind::Random),
        Just(PolicyKind::TreePlru),
        Just(PolicyKind::Srrip),
        Just(PolicyKind::Brrip),
        Just(PolicyKind::Hawkeye),
    ]
}

proptest! {
    /// Victims always come from the allowed mask, whatever the policy
    /// and access history.
    #[test]
    fn victims_respect_masks(
        policy in any_policy(),
        hist in prop::collection::vec((0usize..8, 0u64..64), 0..200),
        mask_bits in 1u64..255,
    ) {
        let mut p = policy.build_impl(4, 8);
        for (way, line) in hist {
            let meta = AccessMeta::demand(LineAddr::new(line), Some(Pc::new(line % 16)));
            p.on_fill(1, way, &meta);
        }
        let v = p.victim(1, mask_bits);
        prop_assert!(mask_bits & (1 << v) != 0, "{policy:?} ignored mask");
    }

    /// Under pure LRU, the victim is never the most recently touched way.
    #[test]
    fn lru_never_evicts_mru(touches in prop::collection::vec(0usize..8, 1..100)) {
        let mut p = PolicyKind::Lru.build_impl(1, 8);
        let meta = AccessMeta::demand(LineAddr::new(1), None);
        for w in 0..8 {
            p.on_fill(0, w, &meta);
        }
        let mut last = 0;
        for w in touches {
            p.on_hit(0, w, &meta);
            last = w;
        }
        prop_assert_ne!(p.victim(0, all_ways(8)), last);
    }

    /// LRU matches a reference stack-model implementation exactly.
    #[test]
    fn lru_matches_reference_stack(lines in prop::collection::vec(0u64..24, 1..300)) {
        let mut c = Cache::new(CacheConfig::new("t", 8 * 64, 8, PolicyKind::Lru));
        let mut stack: Vec<u64> = Vec::new(); // MRU first, single set
        for line in lines {
            // All lines map to set 0 in a 1-set cache.
            let addr = LineAddr::new(line); // 1 set: every line in set 0
            let hit = c.access(addr, None, false).hit;
            let ref_hit = stack.contains(&line);
            prop_assert_eq!(hit, ref_hit, "hit mismatch for {}", line);
            if !hit {
                c.fill(addr, None, false);
            }
            stack.retain(|l| *l != line);
            stack.insert(0, line);
            stack.truncate(8);
        }
    }

    /// Way masks partition cleanly for every legal markov allocation.
    #[test]
    fn partition_masks_always_disjoint(allocs in prop::collection::vec(0usize..12, 1..50)) {
        let mut p = PartitionedWays::new(16, 8);
        for a in allocs {
            p.set_markov_ways(a);
            prop_assert_eq!(p.data_mask() & p.markov_mask(), 0);
            prop_assert_eq!(p.data_mask() | p.markov_mask(), all_ways(16));
            prop_assert!(p.markov_ways() <= 8);
        }
    }

    /// Shrinking the allowed ways bounds per-set occupancy accordingly.
    #[test]
    fn masked_cache_respects_reduced_capacity(
        lines in prop::collection::vec(0u64..256, 1..300),
        keep_ways in 1usize..8,
    ) {
        let mut c = Cache::new(CacheConfig::new("t", 16 * 8 * 64, 8, PolicyKind::Lru));
        c.set_way_mask(all_ways(keep_ways));
        for l in lines {
            c.fill(LineAddr::new(l), None, false);
        }
        prop_assert!(c.occupancy() <= 16 * keep_ways);
    }
}
