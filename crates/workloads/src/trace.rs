//! The memory-access record and trace-source abstraction.

use triangel_types::{Addr, Pc};

/// One memory access as seen by the core's load/store unit.
///
/// `work` models the non-memory instructions the core executes before
/// this access (so the timing model can charge issue bandwidth), and
/// `dependent` marks address-dependent accesses (pointer chasing), which
/// cannot issue until the previous access's data returns. The dependence
/// flag is what makes lookahead-2 matter: the paper notes (Section 4.5,
/// footnote 8) that on a linked list a lookahead-1 prefetcher has no more
/// memory-level parallelism than the program itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAccess {
    /// Program counter of the load.
    pub pc: Pc,
    /// Virtual byte address accessed.
    pub vaddr: Addr,
    /// This access's address was produced by the previous access of the
    /// same stream (serializing dependence).
    pub dependent: bool,
    /// Non-memory instructions executed before this access.
    pub work: u8,
}

impl MemoryAccess {
    /// Creates an independent access with a default amount of
    /// surrounding work.
    pub fn new(pc: Pc, vaddr: Addr) -> Self {
        MemoryAccess {
            pc,
            vaddr,
            dependent: false,
            work: 2,
        }
    }

    /// Marks the access as dependent on the previous one (builder style).
    #[must_use]
    pub fn dependent(mut self) -> Self {
        self.dependent = true;
        self
    }

    /// Sets the surrounding non-memory work (builder style).
    #[must_use]
    pub fn with_work(mut self, work: u8) -> Self {
        self.work = work;
        self
    }
}

/// An unbounded, deterministic stream of memory accesses.
///
/// Generators are infinite: the experiment harness decides how many
/// accesses to draw for warm-up and for measurement, mirroring the
/// paper's checkpoint warm-up/sample methodology (Section 5).
pub trait TraceSource: std::fmt::Debug {
    /// Produces the next access.
    fn next_access(&mut self) -> MemoryAccess;

    /// A short display name for reports.
    fn name(&self) -> &str;
}

/// A replayable, pre-recorded trace (useful in tests and for capturing
/// real program runs such as the Graph500 BFS).
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    name: String,
    accesses: Vec<MemoryAccess>,
    pos: usize,
}

impl RecordedTrace {
    /// Wraps a recorded access sequence. The trace replays in a loop.
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is empty.
    pub fn new(name: impl Into<String>, accesses: Vec<MemoryAccess>) -> Self {
        assert!(
            !accesses.is_empty(),
            "a recorded trace needs at least one access"
        );
        RecordedTrace {
            name: name.into(),
            accesses,
            pos: 0,
        }
    }

    /// Number of recorded accesses before the trace repeats.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }
}

impl TraceSource for RecordedTrace {
    fn next_access(&mut self) -> MemoryAccess {
        let a = self.accesses[self.pos];
        self.pos = (self.pos + 1) % self.accesses.len();
        a
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_flags() {
        let a = MemoryAccess::new(Pc::new(1), Addr::new(64))
            .dependent()
            .with_work(5);
        assert!(a.dependent);
        assert_eq!(a.work, 5);
    }

    #[test]
    fn recorded_trace_loops() {
        let accs = vec![
            MemoryAccess::new(Pc::new(1), Addr::new(0)),
            MemoryAccess::new(Pc::new(1), Addr::new(64)),
        ];
        let mut t = RecordedTrace::new("t", accs);
        assert_eq!(t.next_access().vaddr, Addr::new(0));
        assert_eq!(t.next_access().vaddr, Addr::new(64));
        assert_eq!(t.next_access().vaddr, Addr::new(0)); // wrapped
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn empty_trace_rejected() {
        let _ = RecordedTrace::new("empty", vec![]);
    }
}
