//! Property tests on [`JobSpec::key`]: equal keys ⇔ identical
//! simulations, including the documented omission rules (the sizing
//! window enters only where it is read; a features override enters only
//! where it is accepted).

use proptest::prelude::*;
use triangel_harness::{JobSpec, MapperSpec, RunParams, TriangelFeatures, WorkloadSpec};
use triangel_sim::PrefetcherChoice;
use triangel_triage::TriageConfig;
use triangel_workloads::spec::SpecWorkload;

fn workloads() -> Vec<WorkloadSpec> {
    let mut w: Vec<WorkloadSpec> = SpecWorkload::ALL
        .iter()
        .map(|s| WorkloadSpec::Spec(*s))
        .collect();
    w.push(WorkloadSpec::Pair(
        SpecWorkload::Xalan,
        SpecWorkload::Omnetpp,
    ));
    w.push(WorkloadSpec::Pair(SpecWorkload::Mcf, SpecWorkload::Gcc166));
    w
}

fn prefetchers() -> Vec<PrefetcherChoice> {
    use triangel_markov::TargetFormat;
    vec![
        PrefetcherChoice::Baseline,
        PrefetcherChoice::Triage,
        PrefetcherChoice::TriageDeg4,
        PrefetcherChoice::TriageDeg4Look2,
        PrefetcherChoice::TriageFormat(TargetFormat::triage_default()),
        PrefetcherChoice::TriageFormat(TargetFormat::Ideal32),
        PrefetcherChoice::Triangel,
        PrefetcherChoice::TriangelBloom,
        PrefetcherChoice::TriangelNoMrb,
        PrefetcherChoice::TriangelLadder(0),
        PrefetcherChoice::TriangelLadder(3),
        PrefetcherChoice::TriangelLadder(8),
        PrefetcherChoice::TriageCustom(TriageConfig::degree4()),
        PrefetcherChoice::TriangelCustom(triangel_core::TriangelConfig::paper_default()),
    ]
}

fn features_choices() -> Vec<Option<TriangelFeatures>> {
    vec![
        None,
        Some(TriangelFeatures {
            train_on_eviction: true,
            ..TriangelFeatures::all()
        }),
        Some(TriangelFeatures::none()),
    ]
}

fn mappers() -> Vec<MapperSpec> {
    vec![MapperSpec::Default, MapperSpec::Realistic(7)]
}

type Draw = ((usize, usize, usize), (u64, u64, u64, u64), usize);

/// Builds the job a draw describes.
fn job_of(d: Draw) -> JobSpec {
    let ((wl, pf, feat), (warmup, accesses, window, seed), mapper) = d;
    let mut job = JobSpec::new(
        workloads()[wl].clone(),
        prefetchers()[pf],
        RunParams {
            warmup: warmup * 1_000,
            accesses: accesses * 1_000,
            sizing_window: window * 500,
            seed,
        },
    )
    .mapper(mappers()[mapper]);
    if let Some(f) = features_choices()[feat] {
        job = job.features(f);
    }
    job
}

/// The identity of the simulation a job describes, written directly
/// from the documented semantics: every field that can change the
/// simulation, with the sizing window blanked for configurations that
/// never read it and the features override blanked where it is
/// ignored. Two jobs are the same simulation iff their identities are
/// equal — and `key()` must agree exactly.
fn identity(d: Draw) -> String {
    let ((wl, pf, feat), (warmup, accesses, window, seed), mapper) = d;
    let choice = prefetchers()[pf];
    let window = if choice.uses_sizing_window() {
        Some(window)
    } else {
        None
    };
    let features = match features_choices()[feat] {
        Some(f) if choice.accepts_feature_override() => Some(format!("{f:?}")),
        _ => None,
    };
    format!(
        "{:?}|{choice:?}|{warmup}|{accesses}|{window:?}|{seed}|{:?}|{features:?}",
        workloads()[wl],
        mappers()[mapper],
    )
}

fn draws() -> impl Strategy<Value = (Draw, Draw)> {
    let one = || {
        (
            (0usize..9, 0usize..14, 0usize..3),
            (1u64..4, 1u64..4, 1u64..4, 0u64..3),
            0usize..2,
        )
    };
    (one(), one())
}

proptest! {
    /// Distinct (config, features-override, scale, segmentless) tuples
    /// never collide, and identical tuples always share a key.
    #[test]
    fn keys_collide_exactly_when_simulations_coincide(pair in draws()) {
        let (a, b) = pair;
        let (ja, jb) = (job_of(a), job_of(b));
        let (ka, kb) = (ja.key(), jb.key());
        prop_assert_eq!(ka == kb, identity(a) == identity(b),
            "keys `{}` vs `{}`", ja.key(), jb.key());
        // Stability: a key is a pure function of the spec.
        prop_assert_eq!(ka, ja.clone().key());
    }

    /// Keys are manifest-safe: single line, no tabs (the campaign
    /// manifest is tab-separated with the key as the final field).
    #[test]
    fn keys_are_manifest_safe(d in (
        (0usize..9, 0usize..14, 0usize..3),
        (1u64..4, 1u64..4, 1u64..4, 0u64..3),
        0usize..2,
    )) {
        let key = job_of(d).key();
        prop_assert!(!key.contains('\n') && !key.contains('\t'), "key `{key}`");
    }
}

#[test]
fn omission_rules_are_pinned() {
    // `uses_sizing_window`: configurations that never read the window
    // share a key across sweeps that differ only in it.
    let p1 = RunParams {
        warmup: 1_000,
        accesses: 1_000,
        sizing_window: 100,
        seed: 1,
    };
    let p2 = RunParams {
        sizing_window: 999,
        ..p1
    };
    for pf in prefetchers() {
        let k1 = JobSpec::new(WorkloadSpec::Spec(SpecWorkload::Mcf), pf, p1).key();
        let k2 = JobSpec::new(WorkloadSpec::Spec(SpecWorkload::Mcf), pf, p2).key();
        assert_eq!(
            k1 == k2,
            !pf.uses_sizing_window(),
            "window omission rule violated for {pf:?}"
        );
    }
    // Unset features never mark the key; a set override marks it only
    // for configurations that accept one.
    let gate = TriangelFeatures {
        train_on_eviction: true,
        ..TriangelFeatures::all()
    };
    for pf in prefetchers() {
        let plain = JobSpec::new(WorkloadSpec::Spec(SpecWorkload::Xalan), pf, p1);
        assert!(
            !plain.key().contains("|f="),
            "unset features leaked: {pf:?}"
        );
        let gated = plain.clone().features(gate);
        assert_eq!(
            plain.key() == gated.key(),
            !pf.accepts_feature_override(),
            "feature omission rule violated for {pf:?}"
        );
    }
}
