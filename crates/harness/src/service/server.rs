//! The long-lived simulation daemon.

use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use triangel_sim::SNAPSHOT_VERSION;
use triangel_store::{report_to_bytes, Claim, ResultStore};

use crate::pool;
use crate::service::wire::{read_frame, write_frame, Request, Response, PROTO_VERSION};

/// How the daemon executes.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker threads per batch; `0` means one per available core.
    pub workers: usize,
    /// Accesses per core between streamed progress events.
    pub segment_accesses: u64,
    /// The shared result store. Batches resolve against it before
    /// executing, coordinate executions through it, and publish into
    /// it — so overlapping requests from any number of clients (and
    /// other daemons on the same store) each pay only for the jobs
    /// nobody has run yet.
    pub store: Option<Arc<ResultStore>>,
    /// One line per connection/batch on stderr.
    pub verbose: bool,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: 0,
            segment_accesses: 250_000,
            store: None,
            verbose: false,
        }
    }
}

/// A Unix-domain-socket daemon serving sweep batches.
///
/// One accept loop, one handler thread per connection; batches
/// schedule on the same work-stealing [`pool`] in-process sweeps use.
/// Served results are byte-identical to local execution: a job is
/// either simulated here (same deterministic pipeline) or read back
/// from the store (exact framed bytes of such a simulation).
#[derive(Debug)]
pub struct Server {
    listener: UnixListener,
    path: PathBuf,
    opts: ServerOptions,
    shutdown: AtomicBool,
}

impl Server {
    /// Binds the daemon to `path`, replacing a stale socket file left
    /// by a dead daemon.
    ///
    /// # Errors
    ///
    /// Socket errors — including `AddrInUse` when a *live* daemon
    /// already serves this path (stale files are only removed when
    /// nothing answers a connection attempt).
    pub fn bind(path: impl Into<PathBuf>, opts: ServerOptions) -> io::Result<Server> {
        let path = path.into();
        if path.exists() && UnixStream::connect(&path).is_err() {
            // Nothing is listening: a previous daemon died without
            // unlinking its socket.
            std::fs::remove_file(&path)?;
        }
        let listener = UnixListener::bind(&path)?;
        Ok(Server {
            listener,
            path,
            opts,
            shutdown: AtomicBool::new(false),
        })
    }

    /// The socket path this daemon serves.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Accepts and serves connections until a client sends `Shutdown`.
    /// Each connection is handled on its own thread; batches from
    /// concurrent connections interleave on the shared store safely
    /// (per-job claims), though each batch schedules its own pool.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop errors only; per-connection errors are
    /// reported to the offending client and logged.
    pub fn serve(&self) -> io::Result<()> {
        std::thread::scope(|scope| {
            loop {
                let (stream, _) = self.listener.accept()?;
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                scope.spawn(move || {
                    if let Err(e) = self.handle_connection(stream) {
                        // Clients hanging up mid-conversation is
                        // routine; anything else is worth a line.
                        if e.kind() != io::ErrorKind::UnexpectedEof {
                            eprintln!("[serve] connection error: {e}");
                        }
                    }
                });
            }
            Ok(())
        })
    }

    /// Signals the accept loop to exit and wakes it with a throwaway
    /// self-connection.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = UnixStream::connect(&self.path);
    }

    fn handle_connection(&self, stream: UnixStream) -> io::Result<()> {
        let mut reader = stream.try_clone()?;
        // Batch workers stream events concurrently, so writes go
        // through a mutex; each frame is written whole.
        let writer = Mutex::new(stream);
        let send = |resp: &Response| -> io::Result<()> {
            write_frame(&mut *writer.lock().unwrap(), &resp.encode())
        };
        loop {
            let frame = match read_frame(&mut reader) {
                Ok(f) => f,
                // Client hung up between requests: a clean end.
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
                Err(e) => return Err(e),
            };
            let request = match Request::decode(&frame) {
                Ok(r) => r,
                Err(e) => {
                    send(&Response::Error {
                        message: format!("bad request: {e}"),
                    })?;
                    continue;
                }
            };
            match request {
                Request::Hello { proto, snapshot } => {
                    if proto != PROTO_VERSION || snapshot != SNAPSHOT_VERSION {
                        send(&Response::Error {
                            message: format!(
                                "version mismatch: client proto {proto} snapshot {snapshot}, \
                                 daemon proto {PROTO_VERSION} snapshot {SNAPSHOT_VERSION}"
                            ),
                        })?;
                        return Ok(());
                    }
                    send(&Response::HelloOk {
                        proto: PROTO_VERSION,
                        snapshot: SNAPSHOT_VERSION,
                    })?;
                }
                Request::RunJobs { jobs } => {
                    self.run_batch(&jobs, &send)?;
                }
                Request::Shutdown => {
                    send(&Response::ShutdownOk)?;
                    if self.opts.verbose {
                        eprintln!("[serve] shutdown requested");
                    }
                    self.begin_shutdown();
                    return Ok(());
                }
            }
        }
    }

    /// Executes one batch, streaming per-segment progress and per-job
    /// completions, closing with `BatchDone`.
    fn run_batch(
        &self,
        jobs: &[crate::JobSpec],
        send: &(dyn Fn(&Response) -> io::Result<()> + Sync),
    ) -> io::Result<()> {
        let executed = AtomicU32::new(0);
        let store_hits = AtomicU32::new(0);
        let store = self.opts.store.as_deref();
        let workers = if self.opts.workers == 0 {
            pool::default_workers()
        } else {
            self.opts.workers
        };
        if self.opts.verbose {
            eprintln!("[serve] batch of {} job(s)", jobs.len());
        }
        // Send failures inside workers can't abort the pool; remember
        // the first one and surface it after the batch.
        let send_error: Mutex<Option<io::Error>> = Mutex::new(None);
        let send_checked = |resp: &Response| {
            if let Err(e) = send(resp) {
                send_error.lock().unwrap().get_or_insert(e);
            }
        };
        pool::run_indexed(jobs.len(), workers, |i| {
            let job = &jobs[i];
            let idx = i as u32;
            let run_here = || match self.execute_streaming(job, idx, &send_checked) {
                Ok(report) => {
                    executed.fetch_add(1, Ordering::Relaxed);
                    Some(report)
                }
                Err(message) => {
                    send_checked(&Response::JobFailed { idx, message });
                    None
                }
            };
            let (report, from_store) = match store {
                None => (run_here(), false),
                Some(s) => match s.get(&job.key()) {
                    Some(report) => (Some(report), true),
                    None => match s.claim_blocking(&job.key()) {
                        Ok(Claim::Hit(report)) => (Some(report), true),
                        Ok(Claim::Lease(lease)) => {
                            let report = run_here();
                            if let Some(report) = &report {
                                lease.publish(report);
                            }
                            (report, false)
                        }
                        Err(e) => {
                            eprintln!(
                                "[serve] claim failed for {} ({e}); executing uncoordinated",
                                job.key()
                            );
                            (run_here(), false)
                        }
                    },
                },
            };
            if let Some(report) = report {
                if from_store {
                    store_hits.fetch_add(1, Ordering::Relaxed);
                }
                send_checked(&Response::JobDone {
                    idx,
                    from_store,
                    report: report_to_bytes(&report),
                });
            }
        });
        send(&Response::BatchDone {
            executed: executed.load(Ordering::Relaxed),
            store_hits: store_hits.load(Ordering::Relaxed),
        })?;
        if let Some(e) = send_error.into_inner().unwrap() {
            return Err(e);
        }
        Ok(())
    }

    /// Runs one job in segments, streaming a progress event after each.
    fn execute_streaming(
        &self,
        job: &crate::JobSpec,
        idx: u32,
        send: &(dyn Fn(&Response) + Sync),
    ) -> Result<std::sync::Arc<triangel_sim::RunReport>, String> {
        let mut session = job.session().map_err(|e| e.to_string())?;
        let total = session.total_accesses();
        while !session.is_complete() {
            session.run_segment(self.opts.segment_accesses.max(1));
            send(&Response::Progress {
                idx,
                executed: session.executed_accesses(),
                total,
            });
        }
        Ok(std::sync::Arc::new(session.report()))
    }
}
