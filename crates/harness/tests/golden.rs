//! Golden-equivalence pin for the simulator's `RunReport`s.
//!
//! The fixture was generated *before* the in-line cache-metadata
//! refactor (PR 2) from the side-table implementation of
//! `MemorySystem`, so this test proves the metadata migration is
//! behaviour-preserving: a multi-workload sweep — single-core,
//! multiprogrammed, and fragmented-mapping jobs across the prefetcher
//! families — must emit byte-identical JSON under `--jobs 1` and
//! `--jobs 8`, and both must equal the committed pre-refactor bytes.
//!
//! Regenerate (only when an *intentional* behaviour change is being
//! made, and say so in the commit):
//!
//! ```sh
//! TRIANGEL_BLESS=1 cargo test -p triangel-harness --test golden
//! ```

use triangel_harness::{emit, JobSpec, MapperSpec, RunParams, Sweep, SweepOptions, WorkloadSpec};
use triangel_sim::PrefetcherChoice;
use triangel_workloads::spec::SpecWorkload;

const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_sweep.json"
);

fn params() -> RunParams {
    // Small enough to run in seconds, long enough for every prefetcher
    // family to train, fill, hit and evict.
    RunParams {
        warmup: 3_000,
        accesses: 3_000,
        sizing_window: 1_500,
        seed: 11,
    }
}

/// The pinned sweep: three single-core workloads under five
/// configurations, a multiprogrammed pair, and two fragmented-mapping
/// jobs (the fig18/19 shape).
fn golden_sweep() -> Sweep {
    let mut sweep = Sweep::new();
    for wl in [SpecWorkload::Xalan, SpecWorkload::Mcf, SpecWorkload::Sphinx] {
        for pf in [
            PrefetcherChoice::Baseline,
            PrefetcherChoice::Triage,
            PrefetcherChoice::TriageDeg4Look2,
            PrefetcherChoice::Triangel,
            PrefetcherChoice::TriangelBloom,
        ] {
            sweep.push(JobSpec::new(WorkloadSpec::Spec(wl), pf, params()));
        }
    }
    sweep.push(JobSpec::new(
        WorkloadSpec::Pair(SpecWorkload::Xalan, SpecWorkload::Omnetpp),
        PrefetcherChoice::Triangel,
        params(),
    ));
    for pf in [PrefetcherChoice::Triage, PrefetcherChoice::Triangel] {
        sweep.push(
            JobSpec::new(WorkloadSpec::Spec(SpecWorkload::Gcc166), pf, params())
                .mapper(MapperSpec::Realistic(7)),
        );
    }
    sweep
}

#[test]
fn run_reports_match_pre_refactor_fixture_serial_and_parallel() {
    let serial = emit::sweep_to_json(&golden_sweep().run(&SweepOptions::serial()));

    if std::env::var("TRIANGEL_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(FIXTURE_PATH, &serial).expect("write fixture");
        eprintln!("blessed {FIXTURE_PATH}");
    }

    let fixture = std::fs::read_to_string(FIXTURE_PATH).expect(
        "missing fixture; generate with TRIANGEL_BLESS=1 cargo test -p triangel-harness --test golden",
    );
    assert_eq!(
        serial, fixture,
        "serial sweep diverged from the committed pre-refactor RunReports"
    );

    let parallel = emit::sweep_to_json(&golden_sweep().run(&SweepOptions::parallel(8)));
    assert_eq!(
        parallel, fixture,
        "--jobs 8 sweep diverged from the committed pre-refactor RunReports"
    );
}
