//! Text-table rendering for the figure harness.
//!
//! Each figure binary prints a table whose rows are workloads and whose
//! columns are prefetcher configurations, mirroring the bar groups of
//! the paper's plots, with a geometric-mean column where the paper has
//! one.

use triangel_types::stats::geomean;

/// A figure-style table: workloads x configurations.
#[derive(Debug, Clone)]
pub struct FigureTable {
    title: String,
    metric: String,
    configs: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    geomean_row: bool,
}

impl FigureTable {
    /// Creates a table with the given configuration columns.
    pub fn new(title: impl Into<String>, metric: impl Into<String>, configs: Vec<String>) -> Self {
        FigureTable {
            title: title.into(),
            metric: metric.into(),
            configs,
            rows: Vec::new(),
            geomean_row: true,
        }
    }

    /// Disables the geomean row (e.g. Fig. 17 has only two inputs).
    #[must_use]
    pub fn without_geomean(mut self) -> Self {
        self.geomean_row = false;
        self
    }

    /// Adds one workload row.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the configuration count.
    pub fn push_row(&mut self, workload: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.configs.len(), "row width mismatch");
        self.rows.push((workload.into(), values));
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The metric description.
    pub fn metric(&self) -> &str {
        &self.metric
    }

    /// The configuration (column) labels.
    pub fn configs(&self) -> &[String] {
        &self.configs
    }

    /// The workload rows: `(label, per-configuration values)`.
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }

    /// Whether a geomean row is rendered (and meaningful).
    pub fn has_geomean(&self) -> bool {
        self.geomean_row && self.rows.len() > 1
    }

    /// Returns the per-configuration geometric means over workloads.
    pub fn geomeans(&self) -> Vec<f64> {
        (0..self.configs.len())
            .map(|c| {
                let col: Vec<f64> = self.rows.iter().map(|(_, v)| v[c]).collect();
                geomean(&col).unwrap_or(f64::NAN)
            })
            .collect()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {}\n({})\n\n", self.title, self.metric));
        let w0 = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .chain(["Geomean".len(), "Workload".len()])
            .max()
            .unwrap_or(8);
        let wc: Vec<usize> = self.configs.iter().map(|c| c.len().max(7)).collect();

        out.push_str(&format!("{:w0$}", "Workload"));
        for (c, w) in self.configs.iter().zip(&wc) {
            out.push_str(&format!("  {c:>w$}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(w0 + wc.iter().map(|w| w + 2).sum::<usize>()));
        out.push('\n');
        for (name, vals) in &self.rows {
            out.push_str(&format!("{name:w0$}"));
            for (v, w) in vals.iter().zip(&wc) {
                out.push_str(&format!("  {v:>w$.3}"));
            }
            out.push('\n');
        }
        if self.geomean_row && self.rows.len() > 1 {
            out.push_str(&format!("{:w0$}", "Geomean"));
            for (v, w) in self.geomeans().iter().zip(&wc) {
                out.push_str(&format!("  {v:>w$.3}"));
            }
            out.push('\n');
        }
        out
    }

    /// Convenience: render to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_geomean() {
        let mut t = FigureTable::new("Fig. 10", "Speedup", vec!["A".into(), "B".into()]);
        t.push_row("w1", vec![1.0, 2.0]);
        t.push_row("w2", vec![4.0, 8.0]);
        let s = t.render();
        assert!(s.contains("Fig. 10"));
        assert!(s.contains("Geomean"));
        let g = t.geomeans();
        assert!((g[0] - 2.0).abs() < 1e-12);
        assert!((g[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = FigureTable::new("t", "m", vec!["A".into()]);
        t.push_row("w", vec![1.0, 2.0]);
    }
}
