//! Way partitioning between L3 data and Markov metadata.

use crate::replacement::{all_ways, WayMask};

/// Tracks how the L3's ways are split between ordinary data and the
/// Markov-table partition (Sections 3.2, 3.5, 4.7 of the paper).
///
/// Ways `0..markov_ways` belong to the Markov table; the rest hold data.
/// Both Triage and Triangel cap the partition at half the cache
/// (8 of 16 ways).
///
/// # Examples
///
/// ```
/// use triangel_cache::PartitionedWays;
///
/// let mut p = PartitionedWays::new(16, 8);
/// assert_eq!(p.markov_ways(), 0);
/// p.set_markov_ways(4);
/// assert_eq!(p.data_mask(), 0xFFF0); // ways 4..16 for data
/// assert_eq!(p.markov_mask(), 0x000F);
/// assert_eq!(p.resizes(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedWays {
    total_ways: usize,
    max_markov_ways: usize,
    markov_ways: usize,
    resizes: u64,
}

impl PartitionedWays {
    /// Creates a partition over `total_ways`, reserving at most
    /// `max_markov_ways` for metadata.
    ///
    /// # Panics
    ///
    /// Panics if `max_markov_ways >= total_ways` (data must keep a way)
    /// or `total_ways` is 0 or above 64.
    pub fn new(total_ways: usize, max_markov_ways: usize) -> Self {
        assert!(total_ways > 0 && total_ways <= 64);
        assert!(
            max_markov_ways < total_ways,
            "the data cache must keep at least one way"
        );
        PartitionedWays {
            total_ways,
            max_markov_ways,
            markov_ways: 0,
            resizes: 0,
        }
    }

    /// Current number of ways reserved for Markov metadata.
    pub const fn markov_ways(&self) -> usize {
        self.markov_ways
    }

    /// Maximum number of ways the Markov table may claim.
    pub const fn max_markov_ways(&self) -> usize {
        self.max_markov_ways
    }

    /// Total ways in the cache.
    pub const fn total_ways(&self) -> usize {
        self.total_ways
    }

    /// Number of ways currently serving data.
    pub const fn data_ways(&self) -> usize {
        self.total_ways - self.markov_ways
    }

    /// Mask of ways usable by data fills.
    pub fn data_mask(&self) -> WayMask {
        all_ways(self.total_ways) & !self.markov_mask()
    }

    /// Mask of ways reserved for Markov metadata.
    pub fn markov_mask(&self) -> WayMask {
        all_ways(self.markov_ways)
    }

    /// Resizes the Markov reservation, clamping to the maximum.
    /// Returns `true` if the size actually changed.
    ///
    /// Resizes are deliberately rare (Triangel re-partitions at most once
    /// per 500 000-access window, Section 4.7) because each one re-indexes
    /// Markov sets (Section 3.2); the `resizes` counter lets the harness
    /// charge that cost.
    pub fn set_markov_ways(&mut self, ways: usize) -> bool {
        let clamped = ways.min(self.max_markov_ways);
        if clamped == self.markov_ways {
            return false;
        }
        self.markov_ways = clamped;
        self.resizes += 1;
        true
    }

    /// Number of resize events so far.
    pub const fn resizes(&self) -> u64 {
        self.resizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_are_disjoint_and_complete() {
        let mut p = PartitionedWays::new(16, 8);
        for n in 0..=8 {
            p.set_markov_ways(n);
            assert_eq!(p.data_mask() & p.markov_mask(), 0);
            assert_eq!(p.data_mask() | p.markov_mask(), all_ways(16));
            assert_eq!(p.data_ways() + p.markov_ways(), 16);
        }
    }

    #[test]
    fn clamps_to_max() {
        let mut p = PartitionedWays::new(16, 8);
        p.set_markov_ways(12);
        assert_eq!(p.markov_ways(), 8);
    }

    #[test]
    fn resize_counting_skips_noops() {
        let mut p = PartitionedWays::new(16, 8);
        assert!(p.set_markov_ways(4));
        assert!(!p.set_markov_ways(4));
        assert!(p.set_markov_ways(2));
        assert_eq!(p.resizes(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn data_keeps_a_way() {
        let _ = PartitionedWays::new(8, 8);
    }
}
