//! Markov-table metadata for Triage and Triangel.
//!
//! The Markov table stores temporally-correlated `(lookup, target)` line
//! pairs inside a way-partition of the L3 (Sections 2–3 of the paper).
//! This crate implements the storage faithfully enough that the paper's
//! *format* experiments (Figs. 18 and 19) reproduce:
//!
//! * [`TargetFormat`] — the five evaluated layouts: 32-bit entries whose
//!   targets indirect through a 1024-entry [`LookupTable`] (16-way,
//!   fully-associative, or ideal), the 10-bit-offset fragmentation
//!   variant, and Triangel's 42-bit direct format.
//! * [`LookupTable`] — the upper-bits table whose silent evictions are
//!   Triage's hidden inaccuracy: a replaced entry redirects every Markov
//!   entry still pointing at it to the *wrong* physical region.
//! * [`MarkovTable`] — set+sub-set indexed storage (Section 3.2): cache
//!   set from the address, way from `tag-# % partition_ways`, 16-way (or
//!   12-way) associative entries within the selected line, one
//!   confidence bit per entry (Section 3.4), with re-indexing on
//!   partition resize. The table is generic over its replacement
//!   policy ([`TriageMarkov`] = HawkEye, [`TriangelMarkov`] = SRRIP)
//!   and backed by a packed set-associative arena
//!   ([`triangel_types::arena::SetArena`]), so a line probe is one
//!   contiguous tag sweep; [`MarkovTableImpl`] wraps every shipped
//!   combination for callers that pick the policy at runtime.
//!
//! # Examples
//!
//! ```
//! use triangel_markov::{MarkovTableImpl, MarkovTableConfig, TargetFormat};
//! use triangel_types::{LineAddr, Pc};
//!
//! let mut t = MarkovTableImpl::new(MarkovTableConfig::triangel());
//! t.set_ways(8);
//! t.train(LineAddr::new(100), LineAddr::new(200), Pc::new(1));
//! let hit = t.lookup(LineAddr::new(100)).expect("trained pair");
//! assert_eq!(hit.target, LineAddr::new(200));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod format;
mod lut;
mod table;

pub use format::{LutAssociativity, TargetFormat};
pub use lut::LookupTable;
pub use table::{
    MarkovHit, MarkovTable, MarkovTableConfig, MarkovTableImpl, MarkovTableStats, TriageMarkov,
    TriangelMarkov,
};
