//! Xalancbmk-like workload: XML tree transformation.
//!
//! Repeated DOM/template traversals produce long, highly exact pointer
//! chases over a working set well beyond the L3 but comfortably inside
//! Markov capacity — the best case for temporal prefetching, which is why
//! Xalan shows the largest speedups in the paper's Fig. 10.

use super::Builder;
use crate::mix::WorkloadMix;

pub(crate) fn build(mut b: Builder) -> WorkloadMix {
    // Main DOM walk: large, stable, strict, dependent.
    b.temporal("xalan.dom", 60_000, 0.93, 8, 0.01, 0.004, true, 4);
    // Stylesheet/template structures: smaller, still exact.
    b.temporal("xalan.templates", 28_000, 0.90, 8, 0.01, 0.006, true, 2);
    // Output buffer writes: strided, stride-prefetchable.
    b.strided("xalan.output", 1, 16_000, 2);
    // Symbol/hash lookups: small hot region, mostly cache-resident.
    b.random("xalan.hash", 4_000, false, 1);
    b.finish()
}
