//! The memory-access record and trace-source abstraction.

use triangel_types::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use triangel_types::{Addr, Pc};

/// One memory access as seen by the core's load/store unit.
///
/// `work` models the non-memory instructions the core executes before
/// this access (so the timing model can charge issue bandwidth), and
/// `dependent` marks address-dependent accesses (pointer chasing), which
/// cannot issue until the previous access's data returns. The dependence
/// flag is what makes lookahead-2 matter: the paper notes (Section 4.5,
/// footnote 8) that on a linked list a lookahead-1 prefetcher has no more
/// memory-level parallelism than the program itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAccess {
    /// Program counter of the load.
    pub pc: Pc,
    /// Virtual byte address accessed.
    pub vaddr: Addr,
    /// This access's address was produced by the previous access of the
    /// same stream (serializing dependence).
    pub dependent: bool,
    /// Non-memory instructions executed before this access.
    pub work: u8,
}

impl MemoryAccess {
    /// Creates an independent access with a default amount of
    /// surrounding work.
    pub fn new(pc: Pc, vaddr: Addr) -> Self {
        MemoryAccess {
            pc,
            vaddr,
            dependent: false,
            work: 2,
        }
    }

    /// Marks the access as dependent on the previous one (builder style).
    #[must_use]
    pub fn dependent(mut self) -> Self {
        self.dependent = true;
        self
    }

    /// Sets the surrounding non-memory work (builder style).
    #[must_use]
    pub fn with_work(mut self, work: u8) -> Self {
        self.work = work;
        self
    }

    /// Writes the access into a snapshot (see [`triangel_types::snap`]).
    pub fn snap_save(&self, w: &mut SnapWriter) {
        w.u64(self.pc.get());
        w.u64(self.vaddr.get());
        w.bool(self.dependent);
        w.u8(self.work);
    }

    /// Reads an access written by [`MemoryAccess::snap_save`].
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError`] on truncated or corrupt data.
    pub fn snap_restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(MemoryAccess {
            pc: Pc::new(r.u64()?),
            vaddr: Addr::new(r.u64()?),
            dependent: r.bool()?,
            work: r.u8()?,
        })
    }
}

/// A small fixed-capacity batch of accesses, filled by
/// [`TraceSource::fill`] and drained by the simulation engine.
///
/// The ring is the unit of amortization on the hot path: the engine
/// crosses the trace-source virtual-call boundary once per
/// [`AccessRing::capacity`] accesses instead of once per access, and
/// generators can hoist per-call setup (weight sums, asserts, bounds)
/// out of their per-access loop. Draining preserves order exactly:
/// `pop` yields accesses in the order they were pushed, so a batched
/// source is observationally identical to repeated
/// [`TraceSource::next_access`] calls.
///
/// # Examples
///
/// ```
/// use triangel_workloads::trace::{AccessRing, MemoryAccess, TraceSource};
/// use triangel_types::{Addr, Pc};
///
/// let mut ring = AccessRing::with_capacity(4);
/// assert_eq!(ring.remaining(), 4);
/// ring.push(MemoryAccess::new(Pc::new(1), Addr::new(64)));
/// assert_eq!(ring.len(), 1);
/// assert_eq!(ring.pop().unwrap().vaddr, Addr::new(64));
/// assert!(ring.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct AccessRing {
    buf: Vec<MemoryAccess>,
    head: usize,
    cap: usize,
}

impl AccessRing {
    /// The default batch size used by the engine (one refill per 64
    /// accesses keeps the ring in cache while amortizing dispatch).
    pub const DEFAULT_CAPACITY: usize = 64;

    /// A ring with the default capacity.
    pub fn new() -> Self {
        AccessRing::with_capacity(AccessRing::DEFAULT_CAPACITY)
    }

    /// A ring holding at most `cap` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        AccessRing {
            buf: Vec::with_capacity(cap),
            head: 0,
            cap,
        }
    }

    /// Maximum number of accesses the ring holds.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Accesses pushed but not yet popped.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Whether every pushed access has been consumed.
    pub fn is_empty(&self) -> bool {
        self.head == self.buf.len()
    }

    /// Free slots available to [`TraceSource::fill`].
    pub fn remaining(&self) -> usize {
        self.cap - self.len()
    }

    /// Appends one access; returns `false` (without storing) when the
    /// ring is full.
    pub fn push(&mut self, access: MemoryAccess) -> bool {
        if self.len() == self.cap {
            return false;
        }
        if self.buf.len() == self.cap {
            // Physical space exhausted but logical space free: reclaim
            // the consumed prefix. Amortized O(1) per push.
            self.buf.drain(..self.head);
            self.head = 0;
        }
        self.buf.push(access);
        true
    }

    /// Removes and returns the oldest unconsumed access.
    pub fn pop(&mut self) -> Option<MemoryAccess> {
        if self.is_empty() {
            return None;
        }
        let a = self.buf[self.head];
        self.head += 1;
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        }
        Some(a)
    }

    /// The unconsumed accesses, oldest first.
    pub fn as_slice(&self) -> &[MemoryAccess] {
        &self.buf[self.head..]
    }

    /// Discards all unconsumed accesses.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

impl Default for AccessRing {
    fn default() -> Self {
        AccessRing::new()
    }
}

/// Replay statistics of a finite recording served as an infinite
/// stream (see [`TraceSource::replay_stats`]).
///
/// A looped short trace measures the recording, not the program: after
/// the first wrap every "miss" is a re-visit the prefetcher may have
/// already memoized. Surfacing the wrap count through the probe
/// registry keeps that visible in campaign output instead of letting a
/// looping replay masquerade as a full-length measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceReplayStats {
    /// Accesses in the underlying recording (one full pass).
    pub records: u64,
    /// Times the replay cursor wrapped back to the start.
    pub wraps: u64,
}

/// An unbounded, deterministic stream of memory accesses.
///
/// Generators are infinite: the experiment harness decides how many
/// accesses to draw for warm-up and for measurement, mirroring the
/// paper's checkpoint warm-up/sample methodology (Section 5).
pub trait TraceSource: std::fmt::Debug {
    /// Produces the next access.
    fn next_access(&mut self) -> MemoryAccess;

    /// Fills the ring's free space with the next accesses of the
    /// stream, returning how many were appended.
    ///
    /// The contract is strict equivalence: the concatenation of every
    /// access ever delivered through `fill` must equal the sequence
    /// repeated [`TraceSource::next_access`] calls would produce,
    /// whatever the ring's capacity or fill pattern. The default does
    /// exactly that; implementations override it only to amortize
    /// per-access overhead (e.g. [`crate::mix::WorkloadMix`] hoists its
    /// weight scan, [`RecordedTrace`] turns replay into slice copies).
    fn fill(&mut self, ring: &mut AccessRing) -> usize {
        let want = ring.remaining();
        for _ in 0..want {
            let pushed = ring.push(self.next_access());
            debug_assert!(pushed, "remaining() slots must accept pushes");
        }
        want
    }

    /// A short display name for reports.
    fn name(&self) -> &str;

    /// Serializes the generator's dynamic state (position, RNG, drifted
    /// sequences) into `w`, so a run can be interrupted and resumed
    /// byte-identically. The consumer reconstructs the generator from
    /// its spec and calls [`TraceSource::restore_state`] on it.
    ///
    /// Every shipped generator implements this; the default refuses so
    /// that external `Box<dyn TraceSource>` implementations fail loudly
    /// instead of resuming with silently reset state.
    ///
    /// # Errors
    ///
    /// [`SnapError::Unsupported`] when the source has no snapshot
    /// support.
    fn save_state(&self, _w: &mut SnapWriter) -> Result<(), SnapError> {
        Err(SnapError::unsupported(format!(
            "trace source `{}` does not support snapshots",
            self.name()
        )))
    }

    /// Restores the dynamic state written by [`TraceSource::save_state`]
    /// into a freshly constructed generator of the same spec.
    ///
    /// # Errors
    ///
    /// [`SnapError`] on unsupported sources or mismatched data.
    fn restore_state(&mut self, _r: &mut SnapReader) -> Result<(), SnapError> {
        Err(SnapError::unsupported(format!(
            "trace source `{}` does not support snapshots",
            self.name()
        )))
    }

    /// Replay statistics for sources that loop a finite recording:
    /// `None` for true generators (the default), `Some` for replayers
    /// such as [`RecordedTrace`] and
    /// [`crate::trace_file::FileTrace`]. The engine exports these
    /// through the probe registry per core.
    fn replay_stats(&self) -> Option<TraceReplayStats> {
        None
    }
}

/// A replayable, pre-recorded trace (useful in tests and for capturing
/// real program runs such as the Graph500 BFS).
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    name: String,
    accesses: Vec<MemoryAccess>,
    pos: usize,
    wraps: u64,
}

impl RecordedTrace {
    /// Wraps a recorded access sequence. The trace replays in a loop;
    /// [`RecordedTrace::wraps`] counts how often it has done so.
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is empty.
    pub fn new(name: impl Into<String>, accesses: Vec<MemoryAccess>) -> Self {
        assert!(
            !accesses.is_empty(),
            "a recorded trace needs at least one access"
        );
        RecordedTrace {
            name: name.into(),
            accesses,
            pos: 0,
            wraps: 0,
        }
    }

    /// Number of recorded accesses before the trace repeats.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// How many times the replay cursor has wrapped back to the start.
    pub fn wraps(&self) -> u64 {
        self.wraps
    }
}

impl TraceSource for RecordedTrace {
    fn next_access(&mut self) -> MemoryAccess {
        let a = self.accesses[self.pos];
        self.pos += 1;
        if self.pos == self.accesses.len() {
            self.pos = 0;
            self.wraps += 1;
        }
        a
    }

    fn fill(&mut self, ring: &mut AccessRing) -> usize {
        // Replay is contiguous slices of the recording (with wrap), so
        // batching is chunked copies instead of per-access modulo.
        let want = ring.remaining();
        let mut delivered = 0;
        while delivered < want {
            let run = (want - delivered).min(self.accesses.len() - self.pos);
            for a in &self.accesses[self.pos..self.pos + run] {
                let pushed = ring.push(*a);
                debug_assert!(pushed, "remaining() slots must accept pushes");
                if !pushed {
                    // Cursor only advances past accesses actually
                    // delivered, keeping fill in sync with next_access
                    // even on a contract break.
                    return delivered;
                }
                self.pos += 1;
                delivered += 1;
            }
            if self.pos == self.accesses.len() {
                self.pos = 0;
                self.wraps += 1;
            }
        }
        delivered
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.usize(self.pos);
        w.u64(self.wraps);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let pos = r.usize()?;
        triangel_types::snap::snap_check(pos < self.accesses.len(), "trace cursor out of range")?;
        self.pos = pos;
        self.wraps = r.u64()?;
        Ok(())
    }

    fn replay_stats(&self) -> Option<TraceReplayStats> {
        Some(TraceReplayStats {
            records: self.accesses.len() as u64,
            wraps: self.wraps,
        })
    }
}

impl Snapshot for AccessRing {
    fn save(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        let pending = self.as_slice();
        w.usize(pending.len());
        for a in pending {
            a.snap_save(w);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let n = r.usize()?;
        triangel_types::snap::snap_check(n <= self.cap, "ring occupancy above capacity")?;
        self.clear();
        for _ in 0..n {
            let pushed = self.push(MemoryAccess::snap_restore(r)?);
            debug_assert!(pushed, "cleared ring accepts up to cap pushes");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_flags() {
        let a = MemoryAccess::new(Pc::new(1), Addr::new(64))
            .dependent()
            .with_work(5);
        assert!(a.dependent);
        assert_eq!(a.work, 5);
    }

    #[test]
    fn recorded_trace_loops() {
        let accs = vec![
            MemoryAccess::new(Pc::new(1), Addr::new(0)),
            MemoryAccess::new(Pc::new(1), Addr::new(64)),
        ];
        let mut t = RecordedTrace::new("t", accs);
        assert_eq!(t.next_access().vaddr, Addr::new(0));
        assert_eq!(t.next_access().vaddr, Addr::new(64));
        assert_eq!(t.next_access().vaddr, Addr::new(0)); // wrapped
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn empty_trace_rejected() {
        let _ = RecordedTrace::new("empty", vec![]);
    }

    #[test]
    fn ring_push_pop_preserves_order() {
        let mut ring = AccessRing::with_capacity(3);
        for i in 0..3u64 {
            assert!(ring.push(MemoryAccess::new(Pc::new(1), Addr::new(i * 64))));
        }
        assert!(!ring.push(MemoryAccess::new(Pc::new(1), Addr::new(999))));
        assert_eq!(ring.pop().unwrap().vaddr, Addr::new(0));
        // One slot free again: pushing compacts the consumed prefix.
        assert!(ring.push(MemoryAccess::new(Pc::new(1), Addr::new(3 * 64))));
        let drained: Vec<u64> = std::iter::from_fn(|| ring.pop())
            .map(|a| a.vaddr.get())
            .collect();
        assert_eq!(drained, vec![64, 128, 192]);
        assert!(ring.is_empty());
        assert_eq!(ring.remaining(), 3);
    }

    #[test]
    fn recorded_fill_matches_next_across_wrap() {
        let accs: Vec<MemoryAccess> = (0..5u64)
            .map(|i| MemoryAccess::new(Pc::new(1), Addr::new(i * 64)))
            .collect();
        let mut by_next = RecordedTrace::new("t", accs.clone());
        let mut by_fill = RecordedTrace::new("t", accs);
        let mut ring = AccessRing::with_capacity(7); // not a divisor of 5
        for _ in 0..4 {
            by_fill.fill(&mut ring);
            while let Some(a) = ring.pop() {
                assert_eq!(a, by_next.next_access());
            }
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_ring_rejected() {
        let _ = AccessRing::with_capacity(0);
    }

    #[test]
    fn recorded_trace_counts_wraps_and_snapshots_them() {
        let accs: Vec<MemoryAccess> = (0..3u64)
            .map(|i| MemoryAccess::new(Pc::new(1), Addr::new(i * 64)))
            .collect();
        let mut t = RecordedTrace::new("t", accs.clone());
        let mut ring = AccessRing::with_capacity(4);
        t.fill(&mut ring); // 4 accesses: one wrap
        ring.clear();
        for _ in 0..3 {
            t.next_access(); // through access 7: second wrap
        }
        assert_eq!(
            t.replay_stats(),
            Some(TraceReplayStats {
                records: 3,
                wraps: 2
            })
        );

        let mut w = SnapWriter::new();
        t.save_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut fresh = RecordedTrace::new("t", accs);
        let mut r = SnapReader::new(&bytes);
        fresh.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh.wraps(), 2);
        assert_eq!(fresh.next_access(), t.next_access());
    }
}
